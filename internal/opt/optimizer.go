package opt

import (
	"fmt"
	"sort"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/fetch"
	"mdq/internal/plan"
)

// Optimizer configures the three-phase branch-and-bound search.
type Optimizer struct {
	// Metric is minimized; nil means cost.ExecTime (the paper's
	// examples use the execution time and request–response metrics,
	// §2.3).
	Metric cost.Metric
	// Estimator sets the caching model and default selectivities
	// used to annotate candidate plans.
	Estimator card.Config
	// K is the number of answers to optimize for; 0 disables the
	// feasibility requirement (all fetch factors stay at 1).
	K int
	// FetchHeuristic seeds phase 3 (greedy by default).
	FetchHeuristic fetch.Heuristic
	// ChooseMethod picks parallel join methods (registration-time
	// knowledge, §3.3); nil means plan.DefaultMethodChooser.
	ChooseMethod plan.MethodChooser
	// Exhaustive disables pruning, forcing full enumeration; used to
	// validate that branch and bound preserves optimality.
	Exhaustive bool
	// MaxStates caps the number of construction states visited per
	// assignment (safety valve; 0 means 1 << 20).
	MaxStates int
	// KeepAlternatives retains the N best complete plans beyond the
	// optimum (-1 keeps every evaluated plan, for plan-space
	// reports).
	KeepAlternatives int
}

// Scored is a complete plan with its evaluated cost.
type Scored struct {
	Plan     *plan.Plan
	Cost     float64
	Feasible bool
}

// Stats reports search effort.
type Stats struct {
	// CandidateAssignments is the size of the full phase-1 space
	// (∏ m_i of feasible patterns per atom).
	CandidateAssignments int
	// PermissibleAssignments survive the callability check.
	PermissibleAssignments int
	// StatesVisited counts phase-2 construction states expanded.
	StatesVisited int
	// StatesPruned counts states cut by the lower bound.
	StatesPruned int
	// Leaves counts complete topologies evaluated (phase 3 runs on
	// each).
	Leaves int
	// FetchVectors counts fetch vectors evaluated in phase 3.
	FetchVectors int
}

// Result is the outcome of an optimization.
type Result struct {
	Best     *plan.Plan
	Cost     float64
	Feasible bool
	Stats    Stats
	// Alternatives holds further evaluated plans, best first (see
	// Optimizer.KeepAlternatives).
	Alternatives []Scored
}

func (o *Optimizer) metric() cost.Metric {
	if o.Metric == nil {
		return cost.ExecTime{}
	}
	return o.Metric
}

func (o *Optimizer) maxStates() int {
	if o.MaxStates <= 0 {
		return 1 << 20
	}
	return o.MaxStates
}

// Optimize runs the full three-phase search on a resolved query and
// returns the cheapest executable plan. The search is exact up to
// the estimator: with Exhaustive set the same optimum is found by
// full enumeration (asserted by the test suite).
func (o *Optimizer) Optimize(q *cq.Query) (*Result, error) {
	for _, a := range q.Atoms {
		if a.Sig == nil {
			return nil, fmt.Errorf("opt: query %s is not resolved against a schema", q.Name)
		}
	}
	res := &Result{Cost: cost.Infinite}

	all, err := abind.EnumerateAll(q)
	if err != nil {
		return nil, err
	}
	res.Stats.CandidateAssignments = len(all)
	perm, err := abind.Enumerate(q)
	if err != nil {
		return nil, err
	}
	if len(perm) == 0 {
		return nil, fmt.Errorf("opt: query %s admits no permissible access-pattern sequence", q.Name)
	}
	res.Stats.PermissibleAssignments = len(perm)
	// Phase 1 order: bound is better (§4.1.1) — most cogent first.
	abind.SortByCogency(perm)

	for _, asn := range perm {
		o.searchAssignment(q, asn, res)
	}
	if res.Best == nil {
		return nil, fmt.Errorf("opt: no executable plan found for query %s", q.Name)
	}
	sort.SliceStable(res.Alternatives, func(i, j int) bool {
		if res.Alternatives[i].Feasible != res.Alternatives[j].Feasible {
			return res.Alternatives[i].Feasible
		}
		return res.Alternatives[i].Cost < res.Alternatives[j].Cost
	})
	return res, nil
}

// searchAssignment runs phases 2 and 3 for one access-pattern
// assignment, updating the incumbent in res.
func (o *Optimizer) searchAssignment(q *cq.Query, asn abind.Assignment, res *Result) {
	// Heuristic seeds (§4.2.1) give the branch and bound a good
	// initial upper bound.
	if t := SerialHeuristic(q, asn, o.Estimator); t != nil {
		o.evalLeaf(q, asn, t, res)
	}
	if t := ParallelHeuristic(q, asn); t != nil {
		o.evalLeaf(q, asn, t, res)
	}

	visited := 0
	keep := func(s *topoState) bool {
		visited++
		res.Stats.StatesVisited++
		if visited > o.maxStates() {
			return false
		}
		if o.Exhaustive || s.placedCount() == 0 {
			return true
		}
		lb, ok := o.partialCost(q, asn, s)
		if !ok {
			return true
		}
		if res.Best != nil && res.Feasible && lb > res.Cost {
			res.Stats.StatesPruned++
			return false
		}
		return true
	}
	WalkTopologies(q, asn, keep, func(t *plan.Topology) {
		o.evalLeaf(q, asn, t, res)
	})
}

// evalLeaf runs phase 3 on a complete topology and updates the
// incumbent.
func (o *Optimizer) evalLeaf(q *cq.Query, asn abind.Assignment, topo *plan.Topology, res *Result) {
	p, err := plan.Build(q, asn, topo, plan.Options{ChooseMethod: o.ChooseMethod})
	if err != nil {
		return
	}
	if err := p.Validate(); err != nil {
		return
	}
	res.Stats.Leaves++
	assigner := &fetch.Assigner{
		Estimator: o.Estimator,
		Metric:    o.metric(),
		K:         o.K,
		Heuristic: o.FetchHeuristic,
	}
	fr := assigner.Assign(p)
	res.Stats.FetchVectors += fr.Explored
	o.offer(res, Scored{Plan: p, Cost: fr.Cost, Feasible: fr.Feasible || o.K <= 0})
}

// offer updates the incumbent and the alternatives list.
func (o *Optimizer) offer(res *Result, s Scored) {
	better := false
	switch {
	case res.Best == nil:
		better = true
	case s.Feasible != res.Feasible:
		better = s.Feasible
	case s.Cost != res.Cost:
		better = s.Cost < res.Cost
	default:
		// Deterministic tie-break on plan signature.
		better = s.Plan.Signature() < res.Best.Signature()
	}
	if better {
		if res.Best != nil && o.KeepAlternatives != 0 {
			res.Alternatives = append(res.Alternatives, Scored{res.Best, res.Cost, res.Feasible})
		}
		res.Best, res.Cost, res.Feasible = s.Plan, s.Cost, s.Feasible
	} else if o.KeepAlternatives != 0 {
		res.Alternatives = append(res.Alternatives, s)
	}
	if o.KeepAlternatives > 0 && len(res.Alternatives) > o.KeepAlternatives {
		sort.SliceStable(res.Alternatives, func(i, j int) bool {
			if res.Alternatives[i].Feasible != res.Alternatives[j].Feasible {
				return res.Alternatives[i].Feasible
			}
			return res.Alternatives[i].Cost < res.Alternatives[j].Cost
		})
		res.Alternatives = res.Alternatives[:o.KeepAlternatives]
	}
}

// partialCost computes the monotone lower bound for a construction
// state: the cost of the partially constructed plan over the placed
// atoms, with every fetch factor at its minimum of 1. Completing the
// plan can only append work after the placed nodes (never between
// them), so their invocation estimates are final and the partial
// cost bounds every completion (§2.4).
func (o *Optimizer) partialCost(q *cq.Query, asn abind.Assignment, s *topoState) (float64, bool) {
	placed := s.placedList()
	sub, subAsn, subTopo := subProblem(q, asn, s.topo, placed)
	p, err := plan.Build(sub, subAsn, subTopo, plan.Options{ChooseMethod: o.ChooseMethod})
	if err != nil {
		return 0, false
	}
	o.Estimator.Annotate(p)
	return o.metric().Cost(p), true
}

// subProblem restricts a query, assignment and topology to a subset
// of atoms (re-indexed), keeping the predicates whose variables are
// all covered by the subset.
func subProblem(q *cq.Query, asn abind.Assignment, topo *plan.Topology, placed []int) (*cq.Query, abind.Assignment, *plan.Topology) {
	sub := &cq.Query{Name: q.Name + "†"}
	subAsn := make(abind.Assignment, len(placed))
	avail := cq.VarSet{}
	for newIdx, i := range placed {
		a := q.Atoms[i]
		sub.Atoms = append(sub.Atoms, &cq.Atom{
			Service: a.Service,
			Terms:   a.Terms,
			Index:   newIdx,
			Sig:     a.Sig,
		})
		subAsn[newIdx] = asn[i]
		avail.AddAll(a.Vars())
	}
	for _, p := range q.Preds {
		if avail.ContainsAll(p.Vars()) {
			sub.Preds = append(sub.Preds, p)
		}
	}
	st := plan.NewTopology(len(placed))
	for a, i := range placed {
		for b, j := range placed {
			if topo.Less(i, j) {
				st.SetLess(a, b)
			}
		}
	}
	return sub, subAsn, st
}

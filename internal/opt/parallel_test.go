package opt_test

import (
	"math/rand"
	"testing"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	. "mdq/internal/opt"
	"mdq/internal/simweb"
)

// parallelLevels are the worker counts exercised by the differential
// tests, per the CI contract: sequential, a typical pool, and an
// oversubscribed pool.
var parallelLevels = []int{1, 4, 8}

// planOrdering flattens a result into the canonical signatures of
// its plans, best first — the byte-identical ordering the parallel
// search must preserve.
func planOrdering(res *Result) []string {
	out := []string{res.Best.Signature()}
	for _, a := range res.Alternatives {
		out = append(out, a.Plan.Signature())
	}
	return out
}

func sameOrdering(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelMatchesSequentialTravel: on the running example with
// KeepAlternatives the parallel search returns byte-identical plan
// orderings — and identical effort counters, since alternative
// collection pins pruning to per-assignment bounds — at every
// parallelism level.
func TestParallelMatchesSequentialTravel(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	optimize := func(par int) *Result {
		o := &Optimizer{
			Metric:           cost.ExecTime{},
			Estimator:        card.Config{Mode: card.OneCall},
			K:                10,
			ChooseMethod:     w.Registry.MethodChooser(),
			KeepAlternatives: -1,
			Parallelism:      par,
		}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := optimize(1)
	baseOrder := planOrdering(base)
	for _, par := range parallelLevels[1:] {
		res := optimize(par)
		if res.Cost != base.Cost || res.Feasible != base.Feasible {
			t.Fatalf("parallelism %d: cost %g/%v, sequential %g/%v",
				par, res.Cost, res.Feasible, base.Cost, base.Feasible)
		}
		if !sameOrdering(planOrdering(res), baseOrder) {
			t.Fatalf("parallelism %d: plan ordering differs from sequential", par)
		}
		if res.Stats != base.Stats {
			t.Errorf("parallelism %d: stats %+v, sequential %+v", par, res.Stats, base.Stats)
		}
	}
}

// TestParallelMatchesSequentialRandom: the same differential contract
// on randomized schemas, patterns, statistics, metrics and K.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1207))
	metrics := []cost.Metric{cost.ExecTime{}, cost.RequestResponse{}, cost.SumCost{}}
	checked := 0
	for trial := 0; checked < 12 && trial < 40; trial++ {
		q, ok := randomResolvedQuery(rng)
		if !ok {
			continue
		}
		metric := metrics[rng.Intn(len(metrics))]
		k := 1 + rng.Intn(8)
		mode := card.CacheMode(rng.Intn(3))
		optimize := func(par int) (*Result, error) {
			o := &Optimizer{Metric: metric, Estimator: card.Config{Mode: mode}, K: k,
				KeepAlternatives: -1, Parallelism: par}
			return o.Optimize(q)
		}
		base, err := optimize(1)
		if err != nil {
			continue
		}
		baseOrder := planOrdering(base)
		for _, par := range parallelLevels[1:] {
			res, err := optimize(par)
			if err != nil {
				t.Fatalf("trial %d parallelism %d: %v", trial, par, err)
			}
			if res.Cost != base.Cost || res.Feasible != base.Feasible {
				t.Fatalf("trial %d parallelism %d: cost %g/%v, sequential %g/%v\nquery %s",
					trial, par, res.Cost, res.Feasible, base.Cost, base.Feasible, q)
			}
			if !sameOrdering(planOrdering(res), baseOrder) {
				t.Fatalf("trial %d parallelism %d: plan ordering differs\nquery %s", trial, par, q)
			}
			if res.Stats != base.Stats {
				t.Fatalf("trial %d parallelism %d: stats %+v, sequential %+v", trial, par, res.Stats, base.Stats)
			}
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d random instances checked", checked)
	}
}

// TestParallelSharedBoundDeterministicOptimum: without alternatives
// the workers share the incumbent bound, so the visited-state
// counters may vary with timing — but the optimum (plan, cost,
// feasibility) and the merged Stats invariants must not.
func TestParallelSharedBoundDeterministicOptimum(t *testing.T) {
	// Three atoms of the running example keep the repeated searches
	// fast while still exercising chunked services and both joins.
	w, q := travelQuery(t, `
q(Conf, City, Hotel, HPrice, FPrice) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, 'luxury', Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    FPrice + HPrice < 2000 {0.01}.`)
	optimize := func(par int) *Result {
		o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
			K: 10, ChooseMethod: w.Registry.MethodChooser(), Parallelism: par}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := optimize(1)
	for _, par := range parallelLevels {
		for run := 0; run < 3; run++ {
			res := optimize(par)
			if res.Cost != base.Cost || res.Feasible != base.Feasible {
				t.Fatalf("parallelism %d: cost %g, want %g", par, res.Cost, base.Cost)
			}
			if got, want := res.Best.Signature(), base.Best.Signature(); got != want {
				t.Fatalf("parallelism %d: best plan %s, want %s", par, got, want)
			}
			s := res.Stats
			if s.CandidateAssignments != base.Stats.CandidateAssignments ||
				s.PermissibleAssignments != base.Stats.PermissibleAssignments {
				t.Fatalf("parallelism %d: assignment counts %+v, want %+v", par, s, base.Stats)
			}
			// Merged effort counters must stay internally consistent:
			// every assignment contributes at least its heuristic-seed
			// leaf, pruning never exceeds visiting, and every costed
			// leaf explored at least one fetch vector.
			if s.Leaves < s.PermissibleAssignments {
				t.Fatalf("parallelism %d: %d leaves for %d assignments", par, s.Leaves, s.PermissibleAssignments)
			}
			if s.StatesPruned > s.StatesVisited {
				t.Fatalf("parallelism %d: pruned %d > visited %d", par, s.StatesPruned, s.StatesVisited)
			}
			if s.StatesVisited <= 0 || s.FetchVectors < s.Leaves {
				t.Fatalf("parallelism %d: implausible stats %+v", par, s)
			}
		}
	}
}

// TestAutoParallelism: the AutoParallelism sentinel and a worker
// count exceeding the assignment count both behave like a plain
// bounded pool.
func TestAutoParallelism(t *testing.T) {
	w, q := travelQuery(t, smallTravelText)
	var want string
	for i, par := range []int{1, AutoParallelism, 64} {
		o := &Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
			K: 10, ChooseMethod: w.Registry.MethodChooser(), Parallelism: par}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Best.Signature()
		} else if got := res.Best.Signature(); got != want {
			t.Fatalf("parallelism %d: best plan %s, want %s", par, got, want)
		}
	}
}

// TestParallelExhaustiveMatches: exhaustive enumeration is also
// parallel-safe and agrees with the pruned search at every level.
func TestParallelExhaustiveMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var q *cq.Query
	for {
		var ok bool
		q, ok = randomResolvedQuery(rng)
		if ok {
			break
		}
	}
	costs := map[float64]bool{}
	for _, par := range parallelLevels {
		for _, exhaustive := range []bool{false, true} {
			o := &Optimizer{Metric: cost.RequestResponse{}, Estimator: card.Config{Mode: card.OneCall},
				K: 5, Exhaustive: exhaustive, Parallelism: par}
			res, err := o.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			costs[res.Cost] = true
		}
	}
	if len(costs) != 1 {
		t.Fatalf("optimum varied across parallelism/exhaustiveness: %v", costs)
	}
}

// Package httpwrap turns registered services into real web services
// and back: a Handler exposes any service.Service over HTTP with a
// JSON request–response protocol (chunk paging included), and a
// Client implements service.Service against such an endpoint.
//
// This is the substrate standing in for the paper's wrappers over
// live deep-web sites (§6): the execution engine drives actual HTTP
// round-trips, with the simulated service time either reported in a
// header (fast tests) or really slept on the server (scaled).
package httpwrap

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mdq/internal/schema"
	"mdq/internal/service"
)

// wireValue is the JSON encoding of a schema.Value.
type wireValue struct {
	Kind string  `json:"k"`
	Str  string  `json:"s,omitempty"`
	Num  float64 `json:"n,omitempty"`
}

func toWire(v schema.Value) wireValue {
	switch v.Kind {
	case schema.StringValue:
		return wireValue{Kind: "s", Str: v.Str}
	case schema.NumberValue:
		return wireValue{Kind: "n", Num: v.Num}
	case schema.DateValue:
		return wireValue{Kind: "d", Num: v.Num}
	default:
		return wireValue{Kind: "0"}
	}
}

func fromWire(w wireValue) (schema.Value, error) {
	switch w.Kind {
	case "s":
		return schema.S(w.Str), nil
	case "n":
		return schema.N(w.Num), nil
	case "d":
		return schema.DateFromDays(w.Num), nil
	case "0":
		return schema.Null, nil
	default:
		return schema.Null, fmt.Errorf("httpwrap: unknown value kind %q", w.Kind)
	}
}

// wireSignature carries a schema.Signature across the wire.
type wireSignature struct {
	Name     string     `json:"name"`
	Attrs    []wireAttr `json:"attrs"`
	Patterns []string   `json:"patterns"`
	Kind     string     `json:"kind"`
	Stats    wireStats  `json:"stats"`
}

type wireAttr struct {
	Name     string `json:"name"`
	Domain   string `json:"domain"`
	Kind     string `json:"kind"`
	Distinct int    `json:"distinct,omitempty"`
}

type wireStats struct {
	ERSPI       float64 `json:"erspi"`
	ResponseMs  int64   `json:"responseMs"`
	ChunkSize   int     `json:"chunkSize,omitempty"`
	Decay       int     `json:"decay,omitempty"`
	CostPerCall float64 `json:"costPerCall,omitempty"`
}

func sigToWire(sig *schema.Signature) wireSignature {
	w := wireSignature{Name: sig.Name, Kind: sig.Kind.String()}
	for _, a := range sig.Attrs {
		kind := "s"
		switch a.Domain.Kind {
		case schema.NumberValue:
			kind = "n"
		case schema.DateValue:
			kind = "d"
		}
		w.Attrs = append(w.Attrs, wireAttr{Name: a.Name, Domain: a.Domain.Name, Kind: kind, Distinct: a.Domain.DistinctValues})
	}
	for _, p := range sig.Patterns {
		w.Patterns = append(w.Patterns, p.String())
	}
	st := sig.Statistics()
	w.Stats = wireStats{
		ERSPI:       st.ERSPI,
		ResponseMs:  st.ResponseTime.Milliseconds(),
		ChunkSize:   st.ChunkSize,
		Decay:       st.Decay,
		CostPerCall: st.CostPerCall,
	}
	return w
}

func sigFromWire(w wireSignature) (*schema.Signature, error) {
	sig := &schema.Signature{Name: w.Name}
	if w.Kind == schema.Search.String() {
		sig.Kind = schema.Search
	}
	for _, a := range w.Attrs {
		kind := schema.StringValue
		switch a.Kind {
		case "n":
			kind = schema.NumberValue
		case "d":
			kind = schema.DateValue
		}
		sig.Attrs = append(sig.Attrs, schema.Attribute{
			Name:   a.Name,
			Domain: schema.Domain{Name: a.Domain, Kind: kind, DistinctValues: a.Distinct},
		})
	}
	for _, p := range w.Patterns {
		pat, err := schema.ParsePattern(p)
		if err != nil {
			return nil, err
		}
		sig.Patterns = append(sig.Patterns, pat)
	}
	sig.Stats = schema.Stats{
		ERSPI:        w.Stats.ERSPI,
		ResponseTime: time.Duration(w.Stats.ResponseMs) * time.Millisecond,
		ChunkSize:    w.Stats.ChunkSize,
		Decay:        w.Stats.Decay,
		CostPerCall:  w.Stats.CostPerCall,
	}
	return sig, sig.Validate()
}

type invokeRequest struct {
	Pattern int         `json:"pattern"`
	Page    int         `json:"page"`
	Inputs  []wireValue `json:"inputs"`
}

type invokeResponse struct {
	Rows      [][]wireValue `json:"rows"`
	HasMore   bool          `json:"hasMore"`
	ElapsedMs int64         `json:"elapsedMs"`
	Error     string        `json:"error,omitempty"`
}

// HandlerOptions configures the server side.
type HandlerOptions struct {
	// SleepScale really sleeps scale × simulated elapsed per request
	// (0 = report only, via the X-Simulated-Elapsed-Ms header and
	// body).
	SleepScale float64
}

// Handler exposes a service over HTTP:
//
//	GET  <base>/signature     → JSON signature
//	POST <base>/invoke        → JSON invokeRequest/invokeResponse
func Handler(svc service.Service, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/signature", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(sigToWire(svc.Signature())); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req invokeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		inputs := make([]schema.Value, len(req.Inputs))
		for i, wv := range req.Inputs {
			v, err := fromWire(wv)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			inputs[i] = v
		}
		resp, err := svc.Invoke(r.Context(), req.Pattern, service.Request{Inputs: inputs, Page: req.Page})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if opts.SleepScale > 0 {
			select {
			case <-time.After(time.Duration(float64(resp.Elapsed) * opts.SleepScale)):
			case <-r.Context().Done():
				return
			}
		}
		out := invokeResponse{HasMore: resp.HasMore, ElapsedMs: resp.Elapsed.Milliseconds()}
		for _, row := range resp.Rows {
			wrow := make([]wireValue, len(row))
			for i, v := range row {
				wrow[i] = toWire(v)
			}
			out.Rows = append(out.Rows, wrow)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Simulated-Elapsed-Ms", strconv.FormatInt(out.ElapsedMs, 10))
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Client consumes a wrapped service endpoint; it implements
// service.Service, so remote services register and execute exactly
// like local ones. Transient transport errors and 5xx responses are
// retried with exponential backoff (invocations are read-only and
// idempotent), up to Retries attempts.
type Client struct {
	base string
	http *http.Client
	sig  *schema.Signature

	// Retries is the number of attempts for transient failures
	// (default 3). Backoff starts at 50 ms and doubles.
	Retries int
}

// Dial fetches the remote signature and returns a ready client.
func Dial(ctx context.Context, baseURL string, hc *http.Client) (*Client, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/signature", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpwrap: fetching signature: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("httpwrap: signature endpoint returned %s: %s", resp.Status, body)
	}
	var ws wireSignature
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		return nil, err
	}
	sig, err := sigFromWire(ws)
	if err != nil {
		return nil, err
	}
	return &Client{base: baseURL, http: hc, sig: sig}, nil
}

// Signature implements service.Service.
func (c *Client) Signature() *schema.Signature { return c.sig }

// Invoke implements service.Service with one HTTP round-trip,
// retrying transient failures.
func (c *Client) Invoke(ctx context.Context, patternIdx int, req service.Request) (service.Response, error) {
	wreq := invokeRequest{Pattern: patternIdx, Page: req.Page}
	for _, v := range req.Inputs {
		wreq.Inputs = append(wreq.Inputs, toWire(v))
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return service.Response{}, err
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 3
	}
	var hresp *http.Response
	backoff := 50 * time.Millisecond
	for attempt := 1; ; attempt++ {
		hreq, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/invoke", bytes.NewReader(body))
		if rerr != nil {
			return service.Response{}, rerr
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err = c.http.Do(hreq)
		transient := err != nil || hresp.StatusCode >= 500
		if !transient {
			break
		}
		if hresp != nil {
			io.Copy(io.Discard, io.LimitReader(hresp.Body, 512))
			hresp.Body.Close()
		}
		if attempt >= retries || ctx.Err() != nil {
			if err != nil {
				return service.Response{}, fmt.Errorf("httpwrap: invoking %s (attempt %d): %w", c.sig.Name, attempt, err)
			}
			return service.Response{}, fmt.Errorf("httpwrap: %s returned %s after %d attempts", c.sig.Name, hresp.Status, attempt)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return service.Response{}, ctx.Err()
		}
		backoff *= 2
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return service.Response{}, fmt.Errorf("httpwrap: %s returned %s: %s", c.sig.Name, hresp.Status, bytes.TrimSpace(msg))
	}
	var wresp invokeResponse
	if err := json.NewDecoder(hresp.Body).Decode(&wresp); err != nil {
		return service.Response{}, err
	}
	if wresp.Error != "" {
		return service.Response{}, fmt.Errorf("httpwrap: %s: %s", c.sig.Name, wresp.Error)
	}
	out := service.Response{
		HasMore: wresp.HasMore,
		Elapsed: time.Duration(wresp.ElapsedMs) * time.Millisecond,
	}
	for _, wrow := range wresp.Rows {
		row := make([]schema.Value, len(wrow))
		for i, wv := range wrow {
			v, err := fromWire(wv)
			if err != nil {
				return service.Response{}, err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ServeRegistry mounts every service of a registry under
// /services/<name>/ and returns the mux plus the mounted names.
func ServeRegistry(reg *service.Registry, opts HandlerOptions) (*http.ServeMux, []string) {
	mux := http.NewServeMux()
	var names []string
	for _, svc := range reg.Services() {
		name := svc.Signature().Name
		names = append(names, name)
		prefix := "/services/" + name
		mux.Handle(prefix+"/", http.StripPrefix(prefix, Handler(svc, opts)))
	}
	mux.HandleFunc("/services", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(names); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux, names
}

// DialRegistry connects to a ServeRegistry endpoint and returns a
// registry of remote services.
func DialRegistry(ctx context.Context, baseURL string, hc *http.Client) (*service.Registry, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/services", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	reg := service.NewRegistry()
	for _, name := range names {
		c, err := Dial(ctx, baseURL+"/services/"+name, hc)
		if err != nil {
			return nil, err
		}
		if err := reg.Register(c); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

package httpwrap_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mdq/internal/card"
	"mdq/internal/exec"
	. "mdq/internal/httpwrap"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

// TestSignatureRoundTrip: a signature survives the wire encoding.
func TestSignatureRoundTrip(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	srv := httptest.NewServer(Handler(w.Flight, HandlerOptions{}))
	defer srv.Close()

	c, err := Dial(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	got, want := c.Signature(), w.Flight.Signature()
	if got.Name != want.Name || got.Arity() != want.Arity() || got.Kind != want.Kind {
		t.Errorf("signature mismatch: %s vs %s", got, want)
	}
	if got.Stats.ChunkSize != want.Stats.ChunkSize || got.Stats.ResponseTime != want.Stats.ResponseTime {
		t.Errorf("stats mismatch: %+v vs %+v", got.Stats, want.Stats)
	}
	for i := range want.Patterns {
		if !got.Patterns[i].Equal(want.Patterns[i]) {
			t.Errorf("pattern %d mismatch", i)
		}
	}
	if got.Attrs[2].Domain.Name != "Date" || got.Attrs[2].Domain.Kind != schema.DateValue {
		t.Errorf("domain lost: %+v", got.Attrs[2].Domain)
	}
}

// TestRemoteInvocation: invoking through HTTP returns the same rows
// as the local table, including paging, date values and elapsed
// reporting.
func TestRemoteInvocation(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	srv := httptest.NewServer(Handler(w.Hotel, HandlerOptions{}))
	defer srv.Close()

	c, err := Dial(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	confRows, err := w.Conf.Invoke(context.Background(), 0, service.Request{Inputs: []schema.Value{schema.S("DB")}})
	if err != nil {
		t.Fatal(err)
	}
	row := confRows.Rows[0]
	req := service.Request{Inputs: []schema.Value{row[4], schema.S("luxury"), row[2], row[3]}}

	local, err := w.Hotel.Invoke(context.Background(), 0, req)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Invoke(context.Background(), 0, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Rows) != len(local.Rows) || remote.HasMore != local.HasMore {
		t.Fatalf("remote %d rows hasMore=%v, local %d hasMore=%v",
			len(remote.Rows), remote.HasMore, len(local.Rows), local.HasMore)
	}
	for i := range local.Rows {
		for j := range local.Rows[i] {
			if !remote.Rows[i][j].Equal(local.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, remote.Rows[i][j], local.Rows[i][j])
			}
		}
	}
	if remote.Elapsed <= 0 {
		t.Error("elapsed not propagated")
	}
}

// TestErrorPropagation: server-side invocation errors surface as
// client errors, not empty results.
func TestErrorPropagation(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	srv := httptest.NewServer(Handler(w.Hotel, HandlerOptions{}))
	defer srv.Close()
	c, err := Dial(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Wrong pattern index.
	if _, err := c.Invoke(context.Background(), 9, service.Request{}); err == nil {
		t.Error("bad pattern index not propagated")
	}
	// Missing inputs.
	if _, err := c.Invoke(context.Background(), 0, service.Request{}); err == nil {
		t.Error("missing inputs not propagated")
	}
}

// TestFigure11OverHTTP: the headline experiment also reproduces when
// every service call is a real HTTP round-trip — the framework is a
// web-service query processor, not an in-memory one.
func TestFigure11OverHTTP(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	mux, names := ServeRegistry(w.Registry, HandlerOptions{})
	if len(names) != 4 {
		t.Fatalf("mounted %d services, want 4", len(names))
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	reg, err := DialRegistry(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	reg.SetJoinMethod("flight", "hotel", plan.MergeScan)
	sch, err := reg.Schema()
	if err != nil {
		t.Fatal(err)
	}
	q, err := simweb.RunningExampleQuery(sch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q, simweb.AssignmentAlpha1(), simweb.PlanOTopology(),
		plan.Options{ChooseMethod: reg.MethodChooser()})
	if err != nil {
		t.Fatal(err)
	}
	p.ServiceNode[simweb.AtomFlight].Fetches = 3
	p.ServiceNode[simweb.AtomHotel].Fetches = 4

	r := &exec.Runner{Registry: reg, Cache: card.OneCall}
	res, err := r.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11, plan O, one-call cache: 1/71/16/16.
	wantCalls := map[string]int64{"conf": 1, "weather": 71, "flight": 16, "hotel": 16}
	for svc, want := range wantCalls {
		if got := res.Stats.Calls[svc]; got != want {
			t.Errorf("%s calls over HTTP = %d, want %d", svc, got, want)
		}
	}
	if len(res.Rows) == 0 {
		t.Error("no results over HTTP")
	}
}

// TestClientRetriesTransientFailures: 5xx responses are retried with
// backoff; the call succeeds once the server recovers.
func TestClientRetriesTransientFailures(t *testing.T) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	inner := Handler(w.Weather, HandlerOptions{})
	var failures atomic.Int64
	failures.Store(2) // first two invokes return 503
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/invoke" && failures.Add(-1) >= 0 {
			http.Error(rw, "upstream flaking", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(rw, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := Dial(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Invoke(context.Background(), 0, service.Request{
		Inputs: []schema.Value{schema.S("Cancun"), confStart(t, w)},
	})
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(resp.Rows))
	}

	// A permanently failing server exhausts the retries with a clear
	// error.
	failures.Store(1 << 30)
	if _, err := c.Invoke(context.Background(), 0, service.Request{
		Inputs: []schema.Value{schema.S("Cancun"), confStart(t, w)},
	}); err == nil {
		t.Fatal("permanent 503 must fail")
	}
}

func confStart(t *testing.T, w *simweb.TravelWorld) schema.Value {
	t.Helper()
	resp, err := w.Conf.Invoke(context.Background(), 0, service.Request{Inputs: []schema.Value{schema.S("DB")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range resp.Rows {
		if row[4].Str == "Cancun" {
			return row[2]
		}
	}
	t.Fatal("no Cancun conference")
	return schema.Null
}

package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mdq/internal/serve"
	"mdq/internal/trace"
)

// observability bundles the serving-layer state every request flows
// through: the admission gate, the metrics registry, the slow-query
// log, the trace plane (sampler + ring store) and the audit event
// bus, plus the pre-resolved instruments the hot path updates.
type observability struct {
	admission *serve.Admission
	metrics   *serve.Metrics
	slowlog   *serve.SlowLog
	// sampler decides which requests get traced without asking
	// (-trace-sample); explicit "trace": true requests always do.
	sampler *trace.Sampler
	// traceAll records a trace for every request so slowlog-qualifying
	// ones can be kept — enabled when -slow-above is positive (a
	// request is only known to be slow after it finished, so the spans
	// must already exist). Retention still requires qualification.
	traceAll bool
	// traces is the ring-buffered store behind GET /trace.
	traces *trace.Store
	// events is the merged audit stream behind GET /events.
	events *serve.EventBus

	inflight *serve.Gauge
}

func newObservability(maxInFlight int, queueWait time.Duration, slowCap int, slowThreshold time.Duration, sampleRate float64) *observability {
	m := serve.NewMetrics()
	o := &observability{
		admission: serve.NewAdmission(maxInFlight, queueWait),
		metrics:   m,
		slowlog:   serve.NewSlowLog(slowCap, slowThreshold),
		sampler:   trace.NewSampler(sampleRate),
		traceAll:  slowThreshold > 0,
		traces:    trace.NewStore(0),
		events:    serve.NewEventBus(0),
		inflight:  m.Gauge("mdq_inflight_requests", "Admitted requests currently executing."),
	}
	dropped := m.Counter("mdq_events_dropped_total",
		"Audit events evicted from the bus before any consumer saw them.")
	o.events.OnDrop = func(n int) { dropped.Add(float64(n)) }
	return o
}

// reqStats is the per-request accounting the handlers fill in while
// the middleware owns the record's envelope (endpoint, status, bytes,
// total elapsed).
type reqStats struct {
	Query      string
	Optimize   time.Duration
	Execute    time.Duration
	FirstRow   time.Duration
	Calls      int64
	CacheClass string
	Rows       int
	Err        error
	// Coalesced marks a request that attached to another request's
	// in-flight optimize+execute instead of running its own.
	Coalesced bool
	// Trace / TraceRoot carry the request's trace when one is being
	// recorded — created by the middleware (sampled, or slowlog
	// pre-recording) or by the handler (explicit "trace": true, which
	// also sets TraceForced). TraceSampled marks sampler-chosen traces;
	// the middleware decides retention from the three flags.
	Trace        *trace.Trace
	TraceRoot    *trace.Span
	TraceForced  bool
	TraceSampled bool
}

type reqStatsKey struct{}

// statsFrom returns the request's accounting slot; handlers outside
// the instrumented paths get a discardable dummy.
func statsFrom(ctx context.Context) *reqStats {
	if st, ok := ctx.Value(reqStatsKey{}).(*reqStats); ok {
		return st
	}
	return &reqStats{}
}

// countingWriter tracks the status code and body bytes a handler
// produced.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(status int) {
	if cw.status == 0 {
		cw.status = status
	}
	cw.ResponseWriter.WriteHeader(status)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	n, err := cw.ResponseWriter.Write(p)
	cw.bytes += int64(n)
	return n, err
}

// Flush lets streaming handlers keep flushing through the wrapper.
func (cw *countingWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// shed writes the backpressure response for a rejected request: 429
// with Retry-After when the gate is saturated, 503 when the server is
// draining.
func (o *observability) shed(w http.ResponseWriter, endpoint string, err error) {
	status := http.StatusServiceUnavailable
	reason := "draining"
	retryAfter := 5
	if errors.Is(err, serve.ErrSaturated) {
		status = http.StatusTooManyRequests
		reason = "saturated"
		retryAfter = 1
	}
	o.metrics.CounterL("mdq_admission_shed_total",
		"Requests rejected by admission control.", "reason", reason).Inc()
	o.metrics.CounterL("mdq_requests_total",
		"Requests by endpoint and status code.",
		"endpoint", endpoint, "code", strconv.Itoa(status)).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":%q,"status":%d,"retry_after_seconds":%d}`+"\n",
		err.Error(), status, retryAfter)
}

// instrument wraps a serving endpoint with admission control and
// per-request accounting: the request is admitted (or shed with
// backpressure), timed, counted into the metrics registry, and its
// record offered to the slow-query log.
func (o *observability) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := o.admission.Acquire(r.Context())
		if err != nil {
			if errors.Is(err, serve.ErrSaturated) || errors.Is(err, serve.ErrDraining) {
				o.shed(w, endpoint, err)
				return
			}
			// The client gave up while queued.
			writeError(w, http.StatusRequestTimeout, "queued request cancelled: %v", err)
			return
		}
		defer release()
		o.inflight.Add(1)
		defer o.inflight.Add(-1)

		st := &reqStats{}
		// The trace decision the middleware can make on its own: the
		// sampler fired, or every request is pre-recorded because only
		// a finished request reveals whether it was slow enough to keep
		// (-slow-above). Explicit "trace": true lives in the body, so
		// the handler adds its own trace when neither fired here.
		if st.TraceSampled = o.sampler.Sample(); st.TraceSampled || o.traceAll {
			st.Trace = trace.New("")
			st.TraceRoot = st.Trace.Root(endpoint)
		}
		cw := &countingWriter{ResponseWriter: w}
		start := time.Now()
		ctx := context.WithValue(r.Context(), reqStatsKey{}, st)
		if st.TraceRoot != nil {
			ctx = trace.With(ctx, st.TraceRoot)
		}
		h(cw, r.WithContext(ctx))
		elapsed := time.Since(start)
		if cw.status == 0 {
			cw.status = http.StatusOK
		}

		o.metrics.CounterL("mdq_requests_total",
			"Requests by endpoint and status code.",
			"endpoint", endpoint, "code", strconv.Itoa(cw.status)).Inc()
		o.metrics.HistogramL("mdq_request_seconds",
			"End-to-end request latency.", nil, "endpoint", endpoint).Observe(elapsed.Seconds())
		if st.Optimize > 0 {
			o.metrics.Histogram("mdq_optimize_seconds",
				"Time spent in plan search and template re-costing.", nil).Observe(st.Optimize.Seconds())
		}
		if st.Execute > 0 {
			o.metrics.Histogram("mdq_execute_seconds",
				"Time spent executing the chosen plan.", nil).Observe(st.Execute.Seconds())
		}
		if st.FirstRow > 0 {
			o.metrics.Histogram("mdq_exec_first_row_seconds",
				"Time from the start of plan execution to its first result row.", nil).Observe(st.FirstRow.Seconds())
		}
		if st.Calls > 0 {
			o.metrics.Counter("mdq_service_calls_total",
				"Logical service calls issued by executions.").Add(float64(st.Calls))
		}
		if st.Rows > 0 {
			o.metrics.Counter("mdq_result_rows_total",
				"Result rows returned to clients.").Add(float64(st.Rows))
		}
		o.metrics.Counter("mdq_bytes_streamed_total",
			"Response body bytes streamed to clients.").Add(float64(cw.bytes))
		if st.CacheClass != "" {
			o.metrics.CounterL("mdq_plan_cache_serves_total",
				"Optimizations by plan-cache outcome class.", "class", st.CacheClass).Inc()
		}
		if st.Coalesced {
			o.metrics.Counter("mdq_query_coalesced_total",
				"Query requests answered by attaching to an identical in-flight request.").Inc()
		}
		rec := serve.RequestRecord{
			Time:            start,
			Endpoint:        endpoint,
			Query:           st.Query,
			Status:          cw.status,
			Elapsed:         elapsed.Seconds(),
			OptimizeSeconds: st.Optimize.Seconds(),
			ExecuteSeconds:  st.Execute.Seconds(),
			FirstRowMillis:  float64(st.FirstRow) / float64(time.Millisecond),
			Calls:           st.Calls,
			CacheClass:      st.CacheClass,
			Rows:            st.Rows,
			Bytes:           cw.bytes,
		}
		if st.Err != nil {
			rec.Error = st.Err.Error()
			if errors.Is(st.Err, serve.ErrBudgetExceeded) {
				reason := "unknown"
				var be *serve.BudgetError
				if errors.As(st.Err, &be) {
					reason = be.Reason
				}
				o.metrics.CounterL("mdq_budget_exceeded_total",
					"Queries aborted by their execution budget.", "reason", reason).Inc()
				o.events.Publish("budget", map[string]string{
					"endpoint": endpoint, "reason": reason, "error": rec.Error})
			}
		}
		if st.Trace != nil {
			st.TraceRoot.End()
			// Retention: explicitly requested traces and sampled ones are
			// always kept; pre-recorded ones only when the request turned
			// out slowlog-qualifying. Everything else is dropped whole —
			// the store never sees unsampled fast requests.
			keep := st.TraceForced || st.TraceSampled ||
				(o.slowlog.Threshold > 0 && elapsed >= o.slowlog.Threshold)
			if keep {
				rec.TraceID = st.Trace.ID()
				o.traces.Add(trace.Dump{TraceID: st.Trace.ID(), Time: start, Spans: trace.Tree(st.Trace.Spans())})
			}
		}
		o.slowlog.Record(rec)
		if o.slowlog.Threshold > 0 && elapsed >= o.slowlog.Threshold {
			o.events.PublishRecord(rec)
		}
	}
}

// forceTrace marks the request's trace as explicitly requested
// ("trace": true), creating one on the spot when neither the sampler
// nor slowlog pre-recording already did — the middleware cannot see
// the request body, so the handler owns this decision. Returns the
// context carrying the trace root.
func forceTrace(ctx context.Context, st *reqStats, name string) context.Context {
	st.TraceForced = true
	if st.Trace == nil {
		st.Trace = trace.New("")
		st.TraceRoot = st.Trace.Root(name)
	}
	return trace.With(ctx, st.TraceRoot)
}

// requestBudget assembles the per-query execution budget from the
// request's deadline_ms / max_calls fields, falling back to the
// server-wide defaults; nil when neither source sets a limit.
func requestBudget(deadlineMS, maxCalls int64, defDeadline time.Duration, defCalls int64) *serve.Budget {
	d := defDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	c := defCalls
	if maxCalls > 0 {
		c = maxCalls
	}
	if d <= 0 && c <= 0 {
		return nil
	}
	return serve.NewBudget(d, c)
}

// budgetAware re-types an optimize/execute failure as the budget
// violation when the request's budget tripped (a cancelled search or
// stream must surface as "budget exceeded", not as the cancellation
// it caused downstream).
func budgetAware(b *serve.Budget, err error) error {
	if b != nil {
		if berr := b.Err(); berr != nil {
			return berr
		}
	}
	return err
}

// writeQueryError maps a handler failure to the wire: budget trips
// become 504 with the budget_exceeded marker, everything else keeps
// the given status.
func writeQueryError(w http.ResponseWriter, status int, err error, phase string) {
	if errors.Is(err, serve.ErrBudgetExceeded) {
		writeErrorEnv(w, apiError{
			Error:          fmt.Sprintf("%s: %v", phase, err),
			Status:         http.StatusGatewayTimeout,
			BudgetExceeded: true,
		})
		return
	}
	writeError(w, status, "%s: %v", phase, err)
}

// writeQueryFailure is writeQueryError for errors that already carry
// their phase prefix (runQuery wraps them before they cross the
// coalescer, so waiters inherit the leader's phase too).
func writeQueryFailure(w http.ResponseWriter, status int, err error) {
	if errors.Is(err, serve.ErrBudgetExceeded) {
		writeErrorEnv(w, apiError{
			Error:          err.Error(),
			Status:         http.StatusGatewayTimeout,
			BudgetExceeded: true,
		})
		return
	}
	writeError(w, status, "%v", err)
}

// cacheClass classifies how the optimizer answered for accounting:
// fresh search, exact-plan hit, template hit, or a template hit that
// had to revalidate.
func cacheClass(templateHit, revalidated, cached bool) string {
	switch {
	case templateHit && revalidated:
		return "revalidated"
	case templateHit:
		return "template"
	case cached:
		return "exact"
	default:
		return "miss"
	}
}

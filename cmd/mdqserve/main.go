// Command mdqserve exposes a built-in simulated deep-web world over
// HTTP, so that mdqrun -remote (or any mdq client) can optimize and
// execute multi-domain queries against real web services.
//
// Usage:
//
//	mdqserve [-addr :8080] [-world travel|bio|mashup] [-scale 0.001]
//
// With -scale > 0 every request really sleeps the scaled simulated
// latency (Table 1 of the paper: a flight call simulates 9.7 s, so
// -scale 0.001 makes it 9.7 ms).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"mdq/internal/httpwrap"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		worldName = flag.String("world", "travel", "built-in world: travel, bio or mashup")
		scale     = flag.Float64("scale", 0, "sleep scale for simulated latencies (0 = report only)")
		jitter    = flag.Float64("jitter", 0, "log-normal latency jitter sigma")
	)
	flag.Parse()

	var reg *service.Registry
	switch *worldName {
	case "travel":
		reg = simweb.NewTravelWorld(simweb.TravelOptions{JitterSigma: *jitter}).Registry
	case "bio":
		reg = simweb.NewBioWorld().Registry
	case "mashup":
		reg = simweb.NewMashupWorld().Registry
	default:
		log.Fatalf("unknown world %q", *worldName)
	}

	mux, names := httpwrap.ServeRegistry(reg, httpwrap.HandlerOptions{SleepScale: *scale})
	fmt.Printf("serving %s world (%v) on %s\n", *worldName, names, *addr)
	fmt.Printf("endpoints: GET /services, GET /services/<name>/signature, POST /services/<name>/invoke\n")
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// Command mdqserve exposes a built-in simulated deep-web world over
// HTTP, so that mdqrun -remote (or any mdq client) can optimize and
// execute multi-domain queries against real web services. It also
// serves the adaptive optimization loop: a query-optimization
// endpoint backed by the parallel branch-and-bound, a shared plan
// cache with template-level entries, statistics observers on every
// service, and a feedback policy that folds executed traffic back
// into the profiles (bumping stats epochs that invalidate or
// revalidate cached plans).
//
// Usage:
//
//	mdqserve [-addr :8080] [-world travel|bio|mashup] [-scale 0.001]
//	         [-parallel -1] [-plancache 128] [-cachettl 0]
//	         [-cachebytes 0] [-revalidate-ratio 4] [-feedback]
//	         [-workers http://w1:8090,http://w2:8091] [-cache-file plans.json]
//	         [-buffer 128] [-health-interval 2s] [-max-retries 2]
//	         [-coalesce] [-rescache 4096] [-rescache-bytes N] [-rescache-ttl 0]
//
// With -scale > 0 every request really sleeps the scaled simulated
// latency (Table 1 of the paper: a flight call simulates 9.7 s, so
// -scale 0.001 makes it 9.7 ms).
//
// With -workers the server becomes a distributed coordinator: POST
// /optimize and POST /query shard the branch-and-bound across the
// listed mdqworker processes (incumbent bound shared mid-search,
// deterministic merge), and /query executions run through the fleet
// too — the winning plan is cut into fragments executed on the
// workers hosting their services (tuples stream back, joins happen
// here). Statistics-epoch bumps are gossiped to the workers' plan
// caches in both directions: local refreshes fan out through the
// gossip loop, and worker-side feedback refreshes return piggybacked
// on fragment results before being re-broadcast. The local template
// cache warms the workers at startup. Workers must serve the same
// world, with -execute enabled (the default). Note that in
// coordinator mode execution traffic flows through the workers'
// services, so this server's -feedback* flags gate only
// single-process execution; profile learning happens under each
// worker's own -feedback policy.
//
// Coordinator mode is fault tolerant: each worker is health-probed
// every -health-interval (GET /dist/health) and walks an
// up/suspect/down state machine also fed by every RPC outcome.
// Transiently failed dispatches — a refused connection, a dropped
// stream, a 5xx — retry up to -max-retries times with backoff,
// failing a search shard or plan fragment over to another live worker
// (mid-stream fragment failover resumes from a cursor, so no tuple is
// duplicated or lost); query errors and budget trips never retry.
// GET /fleet reports the membership view, and the mdq_fleet_workers,
// mdq_search_retries_total and mdq_fragment_retries_total metrics
// export it.
//
// With -cache-file the template-level plan cache is loaded at startup
// (stale entries revalidate on first use) and saved on SIGINT or
// SIGTERM, so optimization warmup survives restarts.
//
// Cross-query sharing: -coalesce (on by default) merges concurrent
// /query requests with identical canonical query, bindings and knobs
// into one in-flight optimize+execute — waiters share the leader's
// rows, keep their own budgets/deadlines/traces, and are counted by
// mdq_query_coalesced_total. -rescache bounds the shared service-call
// result cache consulted by single-process executions before a
// logical call is charged (0 disables); entries are stamped with the
// service's statistics epoch and dropped the moment it moves, so a
// re-profile can never serve stale rows. In coordinator mode the
// equivalent store lives on each worker (mdqworker -rescache), next to
// the services whose calls it saves.
//
// Tracing: a request carrying "trace": true returns an explain-style
// span tree on the response — optimizer phases, cache outcome,
// fragment dispatches (with retries and failovers), and every plan
// node's estimated cost/cardinality next to the observed tuple and
// call counts, including spans recorded on remote workers and spliced
// under their dispatch spans. -trace-sample 0.01 additionally traces
// 1% of requests unasked, and when -slow-above is set every
// slowlog-qualifying request keeps its trace. Kept traces are
// retrievable from the ring-buffered store (GET /trace, GET
// /trace/{id}). Structured audit events — slow queries, membership
// transitions, dispatch retries, budget trips — stream from GET
// /events as ndjson (bounded buffer; evictions are counted by
// mdq_events_dropped_total and resumable with ?after=N). -pprof
// additionally mounts net/http/pprof under /debug/pprof/ (off by
// default; enable only on trusted networks).
//
// Endpoints (all errors are JSON: {"error": "...", "status": N}):
//
//	POST /optimize  {"query": "...", "metric": "etm", "k": 10, "cache": "one-call"}
//	    → the chosen plan, cost, search statistics, cache flags.
//	POST /query     {"template": "... $param ...", "bindings": {"param": ...},
//	                 "metric": "etm", "k": 10, "cache": "one-call", "execute": true}
//	    → optimizes through the template cache (one search serves all
//	      bindings) and, unless execute is false, runs the plan and
//	      returns the answers; execution traffic feeds the profiles.
//	GET  /cache     → cache counters plus per-entry kind/epochs/staleness.
//	GET  /stats     → per-service profiled statistics, epochs,
//	                  observation windows and per-attribute value
//	                  distribution summaries (rows, distinct count,
//	                  buckets, top most-common values).
//	GET  /optimize/stats → cache counters only (kept for older clients).
//	GET  /fleet     → worker membership states, failure counts, last
//	                  probe/error (coordinator mode; 404 otherwise).
//	GET  /trace     → newest-first summaries of retained traces;
//	                  /trace/{id} returns one full span tree.
//	GET  /events    → audit event stream as ndjson (?after=N resumes
//	                  past a previously seen sequence number).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/httpwrap"
	"mdq/internal/opt"
	"mdq/internal/rescache"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/simweb"
	"mdq/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		worldName  = flag.String("world", "travel", "built-in world: travel, bio, mashup or zipf")
		scale      = flag.Float64("scale", 0, "sleep scale for simulated latencies (0 = report only)")
		jitter     = flag.Float64("jitter", 0, "log-normal latency jitter sigma")
		parallel   = flag.Int("parallel", opt.AutoParallelism, "optimizer search workers (-1 = one per CPU, 1 = sequential)")
		planCache  = flag.Int("plancache", 128, "plan cache capacity in entries (0 disables)")
		cacheTTL   = flag.Duration("cachettl", 0, "plan cache entry TTL (0 = no expiry)")
		cacheBytes = flag.Int64("cachebytes", 0, "approximate plan cache byte budget (0 = unlimited)")
		revalRatio = flag.Float64("revalidate-ratio", opt.DefaultRevalidateRatio, "template-cache cost divergence triggering a fresh search")
		feedback   = flag.Bool("feedback", true, "fold executed traffic back into service profiles (stats epochs)")
		minCalls   = flag.Int64("feedback-min-calls", 4, "observed calls required before a profile refresh")
		minDrift   = flag.Float64("feedback-min-drift", 0.1, "relative statistics drift required before a refresh")
		workerList = flag.String("workers", "", "comma-separated mdqworker base URLs; enables coordinator mode")
		healthIvl  = flag.Duration("health-interval", dist.DefaultHealthInterval, "worker health-probe period in coordinator mode (0 disables active probing; passive RPC feedback still applies)")
		maxRetries = flag.Int("max-retries", dist.DefaultMaxRetries, "re-attempts for a transiently failed worker dispatch (0 disables retries)")
		bufferSize = flag.Int("buffer", exec.DefaultBufferSize, "streaming executor edge buffer in tuples (larger = fewer stalls, more memory; smaller = tighter memory, earlier backpressure)")
		cacheFile  = flag.String("cache-file", "", "load the template cache from this file at start and save it on SIGINT/SIGTERM")

		rescacheN     = flag.Int("rescache", rescache.DefaultMaxEntries, "shared service-call result cache capacity in entries (0 disables)")
		rescacheBytes = flag.Int64("rescache-bytes", rescache.DefaultMaxBytes, "approximate result cache byte budget (<0 = unlimited)")
		rescacheTTL   = flag.Duration("rescache-ttl", 0, "result cache entry TTL (0 = no expiry; epochs still invalidate)")
		coalesce      = flag.Bool("coalesce", true, "coalesce identical concurrent /query requests onto one optimize+execute")

		maxInFlight  = flag.Int("max-inflight", 64, "max concurrent /optimize and /query requests (0 = unlimited)")
		queueWait    = flag.Duration("queue-wait", time.Second, "max time a request waits for an in-flight slot before 429")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight requests on shutdown")
		slowlogCap   = flag.Int("slowlog", 128, "slow-query log capacity (GET /slowlog)")
		slowAbove    = flag.Duration("slow-above", 0, "only log requests at least this slow (0 = log all)")
		defDeadline  = flag.Duration("default-deadline", 0, "default per-query deadline when requests set no deadline_ms (0 = none)")
		defMaxCalls  = flag.Int64("default-max-calls", 0, "default per-query service-call cap when requests set no max_calls (0 = none)")
		traceSample  = flag.Float64("trace-sample", 0, "fraction of requests to trace unasked (0 = only explicit or slowlog-qualifying; 1 = all)")
		pprofFlag    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	)
	flag.Parse()

	var reg *service.Registry
	switch *worldName {
	case "travel":
		reg = simweb.NewTravelWorld(simweb.TravelOptions{JitterSigma: *jitter}).Registry
	case "bio":
		reg = simweb.NewBioWorld().Registry
	case "mashup":
		reg = simweb.NewMashupWorld().Registry
	case "zipf":
		reg = simweb.NewZipfWorld(0, 0, 0).Registry
	default:
		log.Fatalf("unknown world %q", *worldName)
	}
	reg.ObserveAll()

	mux, names := httpwrap.ServeRegistry(reg, httpwrap.HandlerOptions{SleepScale: *scale})
	var pc *opt.PlanCache
	if *planCache > 0 {
		pc = opt.NewPlanCacheWith(opt.Policy{Capacity: *planCache, TTL: *cacheTTL, MaxBytes: *cacheBytes})
		reg.SubscribeEpochs(pc, pc.InvalidateService)
	}
	if *cacheFile != "" && pc != nil {
		if n, err := pc.LoadFile(*cacheFile, reg); err != nil {
			if !os.IsNotExist(err) {
				log.Fatalf("loading cache file: %v", err)
			}
		} else {
			fmt.Printf("warmed %d template entries from %s\n", n, *cacheFile)
		}
	}
	srv := &optimizeServer{
		reg:         reg,
		cache:       pc,
		parallel:    *parallel,
		revalRatio:  *revalRatio,
		buffer:      *bufferSize,
		defDeadline: *defDeadline,
		defMaxCalls: *defMaxCalls,
	}
	if *feedback {
		srv.feedback = &service.FeedbackPolicy{MinCalls: *minCalls, MinDrift: *minDrift}
	}
	obs := newObservability(*maxInFlight, *queueWait, *slowlogCap, *slowAbove, *traceSample)
	if *rescacheN != 0 {
		// The shared result cache serves single-process executions; in
		// coordinator mode the equivalent store lives on each worker
		// (mdqworker -rescache), where the service calls actually happen.
		store := rescache.New(rescache.Config{MaxEntries: *rescacheN, MaxBytes: *rescacheBytes, TTL: *rescacheTTL})
		store.Observer = rescache.MetricsObserver(obs.metrics)
		store.Bind(reg)
		srv.rescache = store
	}
	if *coalesce {
		srv.coalescer = &serve.Coalescer{}
	}
	if *workerList != "" {
		for _, base := range strings.Split(*workerList, ",") {
			if base = strings.TrimSpace(strings.TrimSuffix(base, "/")); base != "" {
				srv.workers = append(srv.workers, &dist.HTTPTransport{Base: base})
			}
		}
		if len(srv.workers) > 0 {
			// Fleet membership: the active probe loop (GET /dist/health
			// every -health-interval) plus passive feedback from every
			// coordinator RPC drive each worker's up/suspect/down state.
			// Down workers are skipped by dispatch — their search shards
			// and fragments fail over to live ones — and a single
			// successful probe or RPC brings a restarted worker back.
			member := dist.NewMembership(srv.workers)
			fleetGauges := func() {
				for state, n := range member.Counts() {
					obs.metrics.GaugeL("mdq_fleet_workers",
						"Fleet workers by membership state.", "state", state).Set(float64(n))
				}
			}
			// rediscover is filled in below, once the gossip coordinator
			// exists; a rejoining worker triggers it so the cached
			// hosting snapshot regains the worker's services (a worker
			// that was down at discovery carries an empty set and would
			// otherwise never host a fragment again).
			var rediscover atomic.Value
			member.OnChange = func(worker string, from, to dist.WorkerState) {
				log.Printf("fleet: worker %s %s -> %s", worker, from, to)
				obs.events.Publish("membership", map[string]string{
					"worker": worker, "from": from.String(), "to": to.String()})
				fleetGauges()
				if to == dist.StateUp {
					if f, ok := rediscover.Load().(func()); ok {
						go f()
					}
				}
			}
			fleetGauges()
			srv.membership = member
			if *healthIvl > 0 {
				stopHealth := member.HealthLoop(*healthIvl)
				defer stopHealth()
			}
			srv.retry = dist.RetryPolicy{MaxRetries: *maxRetries}
			if *maxRetries <= 0 {
				srv.retry.MaxRetries = -1
			}
			srv.onRetry = func(op, worker string) {
				name, help := "mdq_fragment_retries_total",
					"Fragment re-dispatches after transient worker failures."
				if op == dist.OpSearch {
					name, help = "mdq_search_retries_total",
						"Search-shard re-runs after transient worker failures."
				}
				obs.metrics.CounterL(name, help, "worker", worker).Inc()
				obs.events.Publish("retry", map[string]string{"op": op, "worker": worker})
			}
			// Epoch bumps — local ones and those absorbed back from
			// executing workers — fan out through the gossip loop so
			// every worker cache revalidates.
			gossip := &dist.Coordinator{Registry: reg, Workers: srv.workers, Membership: member}
			stop := gossip.GossipLoop(func(err error) { log.Printf("gossip: %v", err) })
			defer stop()
			if pc != nil {
				if n, err := gossip.WarmWorkers(context.Background(), pc); err != nil {
					log.Printf("warming workers: %v", err)
				} else if n > 0 {
					fmt.Printf("warmed workers with %d template entries\n", n)
				}
			}
			// The fleet's worker *list* is fixed for this server's
			// lifetime: discover each worker's hosted services once so
			// per-request coordinators don't re-ask on every execution.
			// A worker that is not up yet just means per-execution
			// fallback; the rediscover hook above refreshes the snapshot
			// when it rejoins.
			if hosts, err := gossip.DiscoverHosts(context.Background()); err != nil {
				log.Printf("discovering worker hosting (will retry per execution): %v", err)
			} else {
				srv.setHosts(hosts)
			}
			rediscover.Store(func() {
				if hosts, err := gossip.DiscoverHosts(context.Background()); err != nil {
					log.Printf("refreshing worker hosting after rejoin: %v", err)
				} else {
					srv.setHosts(hosts)
				}
			})
			if srv.feedback != nil {
				fmt.Printf("coordinator mode: execution traffic flows through the workers — " +
					"profile feedback runs under each worker's -feedback policy and returns via reverse gossip\n")
			}
		}
	}
	mux.HandleFunc("/optimize", obs.instrument("/optimize", srv.optimize))
	mux.HandleFunc("/query", obs.instrument("/query", srv.query))
	mux.HandleFunc("/optimize/stats", srv.cacheStats)
	mux.HandleFunc("/cache", srv.cacheReport)
	mux.HandleFunc("/stats", srv.serviceStats)
	mux.HandleFunc("/fleet", srv.fleet)
	mux.Handle("/metrics", obs.metrics.Handler())
	mux.Handle("/slowlog", obs.slowlog.Handler())
	mux.Handle("/trace", obs.traces.Handler())
	mux.Handle("/trace/", obs.traces.Handler())
	mux.Handle("/events", obs.events.Handler())
	if *pprofFlag {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("pprof enabled on /debug/pprof/\n")
	}
	fmt.Printf("serving %s world (%v) on %s\n", *worldName, names, *addr)
	if len(srv.workers) > 0 {
		fmt.Printf("coordinator mode: sharding optimizations across %d workers\n", len(srv.workers))
	}
	fmt.Printf("endpoints: GET /services, GET /services/<name>/signature, POST /services/<name>/invoke,\n")
	fmt.Printf("           POST /optimize, POST /query, GET /cache, GET /stats, GET /optimize/stats,\n")
	fmt.Printf("           GET /metrics, GET /slowlog, GET /trace, GET /events, GET /fleet\n")

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("received %v: draining in-flight requests\n", s)
	}

	// Graceful shutdown: stop admitting (new requests shed with 503),
	// drain what is already running, then flush pending feedback into
	// the profiles and persist the template cache — in that order, so
	// persisted entries carry the statistics the server actually
	// learned.
	obs.admission.StartDrain()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := obs.admission.Drain(sdCtx); err != nil {
		log.Printf("draining admissions: %v", err)
	}
	if n := reg.RefreshObserved(); n > 0 {
		fmt.Printf("flushed pending feedback into %d profile(s)\n", n)
	}
	if *cacheFile != "" && pc != nil {
		if err := pc.SaveFile(*cacheFile); err != nil {
			log.Fatalf("saving cache file: %v", err)
		}
		fmt.Printf("saved template cache to %s\n", *cacheFile)
	}
}

// optimizeServer answers optimization and templated-query requests
// against the world's registry with a shared adaptive plan cache. It
// is safe for concurrent requests: optimizers are built per call and
// the cache, registry and observers are internally synchronized.
type optimizeServer struct {
	reg        *service.Registry
	cache      *opt.PlanCache
	parallel   int
	revalRatio float64
	feedback   *service.FeedbackPolicy
	// workers, when non-empty, switch /optimize and /query into
	// coordinator mode: searches shard across these transports
	// instead of running in-process, and /query executions run as
	// worker-side fragments. In that mode the *workers'* feedback
	// policies observe the traffic (it flows through their services,
	// not ours); this server's feedback policy applies only to
	// single-process execution.
	workers []dist.Transport
	// hosts caches the fleet's service hosting (discovered at startup,
	// refreshed when a worker rejoins the fleet), so per-request
	// coordinators skip one /dist/info round-trip per worker per
	// execution. nil falls back to per-execution discovery, e.g. when
	// a worker was unreachable at startup. Guarded by hostsMu: the
	// membership change hook replaces it while queries read it.
	hosts   []map[string]bool
	hostsMu sync.RWMutex
	// membership is the fleet health view (coordinator mode only):
	// per-request coordinators consult it for dispatch and feed RPC
	// outcomes back; GET /fleet serves its snapshot.
	membership *dist.Membership
	// retry bounds re-attempts of transiently failed dispatches
	// (-max-retries); onRetry counts them into the metrics registry.
	retry   dist.RetryPolicy
	onRetry func(op, worker string)
	// buffer is the streaming executor's per-edge channel capacity
	// (-buffer; 0 = exec.DefaultBufferSize), applied to local runs and
	// to coordinator-side dataflows alike.
	buffer int
	// defDeadline / defMaxCalls are the server-wide budget defaults
	// applied when a request does not set deadline_ms / max_calls
	// (zero = unlimited).
	defDeadline time.Duration
	defMaxCalls int64
	// rescache, when non-nil, is the shared service-call result store
	// single-process executions run over (-rescache): invocations
	// repeated with identical inputs across requests are answered
	// locally, cost no budget charge and count no logical call, until
	// the service's statistics epoch moves.
	rescache exec.Cache
	// coalescer, when non-nil, deduplicates identical concurrent
	// /query requests (-coalesce): same canonical query, bindings and
	// knobs attach to one in-flight optimize+execute and share its
	// outcome, each waiter keeping its own budget, deadline and trace.
	coalescer *serve.Coalescer
}

// setHosts replaces the cached hosting snapshot.
func (s *optimizeServer) setHosts(hosts []map[string]bool) {
	s.hostsMu.Lock()
	s.hosts = hosts
	s.hostsMu.Unlock()
}

// snapshotHosts reads the cached hosting snapshot.
func (s *optimizeServer) snapshotHosts() []map[string]bool {
	s.hostsMu.RLock()
	defer s.hostsMu.RUnlock()
	return s.hosts
}

// coordinator assembles a per-request distributed coordinator.
func (s *optimizeServer) coordinator(m cost.Metric, mode card.CacheMode, k int) *dist.Coordinator {
	return &dist.Coordinator{
		Registry:        s.reg,
		Workers:         s.workers,
		Metric:          m,
		Mode:            mode,
		K:               k,
		RevalidateRatio: s.revalRatio,
		Hosts:           s.snapshotHosts(),
		BufferSize:      s.buffer,
		Membership:      s.membership,
		Retry:           s.retry,
		OnRetry:         s.onRetry,
	}
}

// fleetResponse is what GET /fleet returns in coordinator mode.
type fleetResponse struct {
	Workers []dist.WorkerHealth `json:"workers"`
}

// fleet reports the membership view: every worker's state, its
// consecutive-failure count, last probe time and last error.
func (s *optimizeServer) fleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.membership == nil {
		writeError(w, http.StatusNotFound, "not in coordinator mode: no fleet")
		return
	}
	writeJSON(w, fleetResponse{Workers: s.membership.Snapshot()})
}

// apiError is the uniform JSON error envelope of every endpoint.
type apiError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	// BudgetExceeded marks a query aborted by its execution budget
	// (deadline_ms / max_calls), so clients can distinguish "too
	// expensive" from "broken".
	BudgetExceeded bool `json:"budget_exceeded,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorEnv(w, apiError{Error: fmt.Sprintf(format, args...), Status: status})
}

func writeErrorEnv(w http.ResponseWriter, env apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(env.Status)
	json.NewEncoder(w).Encode(env)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// optimizer assembles a per-request optimizer over the shared cache.
func (s *optimizeServer) optimizer(m cost.Metric, mode card.CacheMode, k int) *opt.Optimizer {
	return &opt.Optimizer{
		Metric:          m,
		Estimator:       card.Config{Mode: mode},
		K:               k,
		ChooseMethod:    s.reg.MethodChooser(),
		Parallelism:     s.parallel,
		Cache:           s.cache,
		CacheSalt:       s.reg.CacheSalt(),
		Epochs:          s.reg,
		RevalidateRatio: s.revalRatio,
	}
}

type optimizeRequest struct {
	Query  string `json:"query"`
	Metric string `json:"metric"` // default etm
	Cache  string `json:"cache"`  // none | one-call | optimal
	K      int    `json:"k"`
	// DeadlineMillis caps the request's wall-clock budget; past it the
	// search/execution aborts with a budget_exceeded error (0 = the
	// server's -default-deadline).
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// MaxCalls caps the logical service calls an execution may issue
	// (0 = the server's -default-max-calls).
	MaxCalls int64 `json:"max_calls,omitempty"`
	// Trace records a span trace of the optimization and returns it on
	// the response (also retained for GET /trace/{id}); explicit tracing
	// ignores the -trace-sample rate.
	Trace bool `json:"trace,omitempty"`
}

type optimizeResponse struct {
	Plan        string    `json:"plan"`
	Cost        float64   `json:"cost"`
	Metric      string    `json:"metric"`
	Feasible    bool      `json:"feasible"`
	Cached      bool      `json:"cached"`
	TemplateHit bool      `json:"template_hit,omitempty"`
	Revalidated bool      `json:"revalidated,omitempty"`
	Stats       opt.Stats `json:"stats"`
	// TraceID / Trace return the recorded span tree when the request
	// set "trace": true. The same dump stays retrievable at
	// GET /trace/{trace_id} until the ring store evicts it.
	TraceID string            `json:"trace_id,omitempty"`
	Trace   []*trace.TreeNode `json:"trace,omitempty"`
}

// knobs decodes the metric/cache/k triple shared by /optimize and
// /query.
func knobs(metric, cacheName string, k int) (cost.Metric, card.CacheMode, int, error) {
	if metric == "" {
		metric = "etm"
	}
	m, ok := cost.ByName(metric)
	if !ok {
		return nil, 0, 0, fmt.Errorf("unknown metric %q", metric)
	}
	mode, ok := card.ModeByName(cacheName)
	if !ok {
		return nil, 0, 0, fmt.Errorf("unknown cache mode %q", cacheName)
	}
	if k == 0 {
		k = 10
	}
	return m, mode, k, nil
}

func (s *optimizeServer) optimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	m, mode, k, err := knobs(req.Metric, req.Cache, req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing query: %v", err)
		return
	}
	sch, err := s.reg.Schema()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "assembling schema: %v", err)
		return
	}
	if err := q.Resolve(sch); err != nil {
		writeError(w, http.StatusBadRequest, "resolving query: %v", err)
		return
	}
	ctx := r.Context()
	st := statsFrom(ctx)
	st.Query = req.Query
	if req.Trace {
		ctx = forceTrace(ctx, st, "/optimize")
	}
	budget := requestBudget(req.DeadlineMillis, req.MaxCalls, s.defDeadline, s.defMaxCalls)
	if budget != nil {
		var cancel context.CancelFunc
		ctx, cancel = budget.Context(ctx)
		defer cancel()
	}
	var res *opt.Result
	optStart := time.Now()
	osp := trace.From(ctx).Child("optimize")
	if len(s.workers) > 0 {
		res, err = s.coordinator(m, mode, k).Optimize(trace.With(ctx, osp), q)
	} else {
		o := s.optimizer(m, mode, k)
		o.Budget = budget
		o.Span = osp
		res, err = o.Optimize(q)
	}
	osp.End()
	st.Optimize = time.Since(optStart)
	if err != nil {
		st.Err = budgetAware(budget, err)
		writeQueryError(w, http.StatusUnprocessableEntity, st.Err, "optimizing")
		return
	}
	st.CacheClass = cacheClass(res.TemplateHit, res.Revalidated, res.Cached)
	resp := optimizeResponse{
		Plan:     res.Best.Describe(),
		Cost:     res.Cost,
		Metric:   m.Name(),
		Feasible: res.Feasible,
		Cached:   res.Cached,
		Stats:    res.Stats,
	}
	if req.Trace && st.Trace != nil {
		st.TraceRoot.End()
		resp.TraceID = st.Trace.ID()
		resp.Trace = trace.Tree(st.Trace.Spans())
	}
	writeJSON(w, resp)
}

type queryRequest struct {
	Template string         `json:"template"`
	Bindings map[string]any `json:"bindings"`
	Metric   string         `json:"metric"`
	Cache    string         `json:"cache"`
	K        int            `json:"k"`
	// Execute runs the optimized plan and returns the answers;
	// defaults to true (omit or set false for optimize-only).
	Execute *bool `json:"execute"`
	// DeadlineMillis / MaxCalls bound the request's execution budget,
	// as on /optimize.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	MaxCalls       int64 `json:"max_calls,omitempty"`
	// Trace records a full span trace of this request — optimizer
	// phases, fragment dispatches, per-plan-node estimate-vs-actual —
	// and returns it on the response (also retained for GET
	// /trace/{id}). Explicit tracing ignores the -trace-sample rate.
	Trace bool `json:"trace,omitempty"`
}

type queryResponse struct {
	optimizeResponse
	Head    []string         `json:"head,omitempty"`
	Rows    [][]string       `json:"rows,omitempty"`
	Calls   map[string]int64 `json:"calls,omitempty"`
	Elapsed float64          `json:"elapsed_seconds,omitempty"`
	// FirstRowMillis is the time from the start of plan execution to
	// its first result row (streaming runtime; absent when the query
	// produced no rows).
	FirstRowMillis float64           `json:"first_row_ms,omitempty"`
	Epochs         map[string]uint64 `json:"epochs,omitempty"`
}

// bindValue converts a JSON binding into a schema value: numbers map
// to numeric values, strings that parse as dates become dates, and
// everything else textual stays a string.
func bindValue(v any) (schema.Value, error) {
	switch x := v.(type) {
	case float64:
		return schema.N(x), nil
	case string:
		for _, layout := range []string{"2006/01/02", "2006-01-02"} {
			if t, err := time.Parse(layout, x); err == nil {
				return schema.D(t.Year(), t.Month(), t.Day()), nil
			}
		}
		return schema.S(x), nil
	default:
		return schema.Value{}, fmt.Errorf("unsupported binding type %T", v)
	}
}

func (s *optimizeServer) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	m, mode, k, err := knobs(req.Metric, req.Cache, req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tpl, err := cq.ParseTemplate(req.Template)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing template: %v", err)
		return
	}
	values := make(map[string]schema.Value, len(req.Bindings))
	for name, raw := range req.Bindings {
		v, err := bindValue(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "binding $%s: %v", name, err)
			return
		}
		values[name] = v
	}
	q, err := tpl.Bind(values)
	if err != nil {
		writeError(w, http.StatusBadRequest, "binding template: %v", err)
		return
	}
	sch, err := s.reg.Schema()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "assembling schema: %v", err)
		return
	}
	if err := q.Resolve(sch); err != nil {
		writeError(w, http.StatusBadRequest, "resolving query: %v", err)
		return
	}
	ctx := r.Context()
	st := statsFrom(ctx)
	st.Query = req.Template
	if req.Trace {
		ctx = forceTrace(ctx, st, "/query")
	}
	budget := requestBudget(req.DeadlineMillis, req.MaxCalls, s.defDeadline, s.defMaxCalls)
	if budget != nil {
		var cancel context.CancelFunc
		ctx, cancel = budget.Context(ctx)
		defer cancel()
	}
	execute := req.Execute == nil || *req.Execute
	var resp *queryResponse
	if s.coalescer != nil && execute {
		// Identical concurrent requests — same canonical query (query
		// shape + bindings + statistics identity) and knobs — attach to
		// one in-flight optimize+execute. The flight runs under the
		// leader's context and budget; a waiter whose own budget trips
		// detaches with its own 504 while the flight continues.
		csp := trace.From(ctx).Child("coalesce")
		v, shared, cerr := s.coalescer.Do(ctx, coalesceKey(q, m, mode, k), func() (any, error) {
			return s.runQuery(ctx, q, m, mode, k, budget, true, st)
		})
		csp.Set("coalesced", strconv.FormatBool(shared))
		csp.End()
		st.Coalesced = shared
		if cerr != nil {
			st.Err = cerr
			writeQueryFailure(w, http.StatusUnprocessableEntity, cerr)
			return
		}
		// Shallow-copy before attaching per-request trace fields: the
		// underlying response is shared with every coalesced caller.
		cp := *(v.(*queryResponse))
		resp = &cp
		if shared {
			// A waiter reports the shared outcome under its own
			// accounting: the rows exist, but no search ran and no
			// service calls were issued on this request's behalf.
			st.Rows = len(resp.Rows)
			st.CacheClass = "coalesced"
		}
	} else {
		resp, err = s.runQuery(ctx, q, m, mode, k, budget, execute, st)
		if err != nil {
			st.Err = err
			writeQueryFailure(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	if req.Trace && st.Trace != nil {
		st.TraceRoot.End()
		resp.TraceID = st.Trace.ID()
		resp.Trace = trace.Tree(st.Trace.Spans())
		w.Header().Set("X-Mdq-Trace-Id", resp.TraceID)
	}
	writeJSON(w, resp)
}

// coalesceKey identifies the shareable unit of /query work: the
// resolved query's canonical key (structure, bindings and statistics
// identity) plus every knob that changes the outcome. Budget,
// deadline and trace flags stay out — they are per-caller.
func coalesceKey(q *cq.Query, m cost.Metric, mode card.CacheMode, k int) string {
	return q.CanonicalKey() + "\x00" + m.Name() + "\x00" + strconv.Itoa(int(mode)) + "\x00" + strconv.Itoa(k)
}

// runQuery is the shared core of /query — one optimization through
// the template cache plus, when execute is set, one plan execution.
// It is the unit of work a coalesced flight runs once on behalf of
// every attached request; st is the leader's accounting slot. Errors
// return phase-prefixed ("optimizing:"/"executing:") and re-typed as
// the budget violation when the leader's budget tripped.
func (s *optimizeServer) runQuery(ctx context.Context, q *cq.Query, m cost.Metric, mode card.CacheMode, k int, budget *serve.Budget, execute bool, st *reqStats) (*queryResponse, error) {
	var res *opt.Result
	var err error
	optStart := time.Now()
	osp := trace.From(ctx).Child("optimize")
	if len(s.workers) > 0 {
		res, err = s.coordinator(m, mode, k).OptimizeTemplate(trace.With(ctx, osp), q)
	} else {
		o := s.optimizer(m, mode, k)
		o.Budget = budget
		o.Span = osp
		res, err = o.OptimizeTemplate(q)
	}
	osp.End()
	st.Optimize = time.Since(optStart)
	if err != nil {
		return nil, fmt.Errorf("optimizing: %w", budgetAware(budget, err))
	}
	st.CacheClass = cacheClass(res.TemplateHit, res.Revalidated, res.Cached)
	resp := &queryResponse{optimizeResponse: optimizeResponse{
		Plan:        res.Best.Describe(),
		Cost:        res.Cost,
		Metric:      m.Name(),
		Feasible:    res.Feasible,
		Cached:      res.Cached,
		TemplateHit: res.TemplateHit,
		Revalidated: res.Revalidated,
		Stats:       res.Stats,
	}}
	if execute {
		var out *exec.Result
		execStart := time.Now()
		esp := trace.From(ctx).Child("execute")
		if len(s.workers) > 0 {
			// Coordinator mode executes through the fleet: the plan is
			// cut into fragments that run on the workers hosting their
			// services, tuples stream back, and the joins happen here.
			// Worker-side feedback bumps return via the reverse gossip
			// path and are re-broadcast by the gossip loop.
			out, err = s.coordinator(m, mode, k).ExecutePlan(trace.With(ctx, esp), res.Best)
		} else {
			runner := &exec.Runner{Registry: s.reg, Cache: mode, K: k, Feedback: s.feedback, BufferSize: s.buffer, ResultCache: s.rescache}
			out, err = runner.Run(trace.With(ctx, esp), res.Best)
		}
		esp.End()
		st.Execute = time.Since(execStart)
		if err != nil {
			return nil, fmt.Errorf("executing: %w", budgetAware(budget, err))
		}
		st.FirstRow = out.FirstRow
		for _, v := range out.Head {
			resp.Head = append(resp.Head, string(v))
		}
		for _, row := range out.Rows {
			resp.Rows = append(resp.Rows, renderRow(row))
		}
		for _, v := range out.Stats.Calls {
			st.Calls += v
		}
		st.Rows = len(resp.Rows)
		resp.Calls = out.Stats.Calls
		resp.Elapsed = out.Elapsed.Seconds()
		resp.FirstRowMillis = float64(out.FirstRow) / float64(time.Millisecond)
		resp.Epochs = s.reg.Epochs()
	}
	return resp, nil
}

func renderRow(row []schema.Value) []string {
	out := make([]string, len(row))
	for i, v := range row {
		switch v.Kind {
		case schema.StringValue:
			out[i] = v.Str
		case schema.DateValue:
			out[i] = v.Time().Format("2006-01-02")
		default:
			out[i] = strings.TrimSuffix(strconv.FormatFloat(v.Num, 'f', 2, 64), ".00")
		}
	}
	return out
}

func (s *optimizeServer) cacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.cache.Stats())
}

type cacheReport struct {
	Stats   opt.CacheStats  `json:"stats"`
	Entries []opt.EntryInfo `json:"entries"`
}

func (s *optimizeServer) cacheReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, cacheReport{Stats: s.cache.Stats(), Entries: s.cache.Entries()})
}

type serviceReport struct {
	Epoch        uint64  `json:"epoch"`
	ERSPI        float64 `json:"erspi"`
	ResponseSecs float64 `json:"response_seconds"`
	ChunkSize    int     `json:"chunk_size"`
	// Observation window since the last refresh.
	ObservedCalls   int64 `json:"observed_calls"`
	ObservedFetches int64 `json:"observed_fetches"`
	ObservedRows    int64 `json:"observed_rows"`
	// Attributes summarizes the per-attribute value distributions
	// (profiled at registration or learned from traffic); attributes
	// without statistics are omitted.
	Attributes map[string]attrReport `json:"attributes,omitempty"`
}

// attrReport summarizes one attribute's value distribution for the
// stats endpoint: overall shape plus the most common values.
type attrReport struct {
	Rows     float64     `json:"rows"`
	Distinct float64     `json:"distinct"`
	Buckets  int         `json:"buckets"`
	TopMCVs  []mcvReport `json:"top_mcvs,omitempty"`
}

type mcvReport struct {
	Value string  `json:"value"`
	Frac  float64 `json:"frac"`
}

func attrReports(sig *schema.Signature) map[string]attrReport {
	var out map[string]attrReport
	st := sig.Statistics()
	for i, attr := range sig.Attrs {
		d := st.Distribution(i)
		if d.Empty() {
			continue
		}
		rep := attrReport{Rows: d.Total, Distinct: d.Distinct, Buckets: len(d.Buckets)}
		for j, m := range d.MCVs {
			if j == 3 {
				break
			}
			rep.TopMCVs = append(rep.TopMCVs, mcvReport{Value: m.Value.String(), Frac: m.Frac})
		}
		if out == nil {
			out = map[string]attrReport{}
		}
		name := attr.Name
		if name == "" {
			name = fmt.Sprintf("arg%d", i)
		}
		out[name] = rep
	}
	return out
}

func (s *optimizeServer) serviceStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	out := map[string]serviceReport{}
	for _, svc := range s.reg.Services() {
		sig := svc.Signature()
		st := sig.Statistics()
		rep := serviceReport{
			Epoch:        s.reg.Epoch(sig.Name),
			ERSPI:        st.ERSPI,
			ResponseSecs: st.ResponseTime.Seconds(),
			ChunkSize:    st.ChunkSize,
			Attributes:   attrReports(sig),
		}
		if ob, ok := s.reg.Observer(sig.Name); ok {
			rep.ObservedCalls, rep.ObservedFetches, rep.ObservedRows = ob.Observations()
		}
		out[sig.Name] = rep
	}
	writeJSON(w, out)
}

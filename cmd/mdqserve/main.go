// Command mdqserve exposes a built-in simulated deep-web world over
// HTTP, so that mdqrun -remote (or any mdq client) can optimize and
// execute multi-domain queries against real web services. It also
// serves a query-optimization endpoint backed by the parallel
// branch-and-bound and a shared plan cache, so repeated queries are
// answered without re-running the search.
//
// Usage:
//
//	mdqserve [-addr :8080] [-world travel|bio|mashup] [-scale 0.001]
//	         [-parallel -1] [-plancache 128]
//
// With -scale > 0 every request really sleeps the scaled simulated
// latency (Table 1 of the paper: a flight call simulates 9.7 s, so
// -scale 0.001 makes it 9.7 ms).
//
// The optimize endpoint accepts
//
//	POST /optimize {"query": "...", "metric": "etm", "k": 10, "cache": "one-call"}
//
// and responds with the chosen plan, its cost, the search statistics
// and whether the plan came from the cache; GET /optimize/stats
// reports cache effectiveness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/httpwrap"
	"mdq/internal/opt"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		worldName = flag.String("world", "travel", "built-in world: travel, bio or mashup")
		scale     = flag.Float64("scale", 0, "sleep scale for simulated latencies (0 = report only)")
		jitter    = flag.Float64("jitter", 0, "log-normal latency jitter sigma")
		parallel  = flag.Int("parallel", opt.AutoParallelism, "optimizer search workers (-1 = one per CPU, 1 = sequential)")
		planCache = flag.Int("plancache", 128, "plan cache capacity (0 disables)")
	)
	flag.Parse()

	var reg *service.Registry
	switch *worldName {
	case "travel":
		reg = simweb.NewTravelWorld(simweb.TravelOptions{JitterSigma: *jitter}).Registry
	case "bio":
		reg = simweb.NewBioWorld().Registry
	case "mashup":
		reg = simweb.NewMashupWorld().Registry
	default:
		log.Fatalf("unknown world %q", *worldName)
	}

	mux, names := httpwrap.ServeRegistry(reg, httpwrap.HandlerOptions{SleepScale: *scale})
	var pc *opt.PlanCache
	if *planCache > 0 {
		pc = opt.NewPlanCache(*planCache)
	}
	srv := &optimizeServer{reg: reg, cache: pc, parallel: *parallel}
	mux.HandleFunc("/optimize", srv.optimize)
	mux.HandleFunc("/optimize/stats", srv.stats)
	fmt.Printf("serving %s world (%v) on %s\n", *worldName, names, *addr)
	fmt.Printf("endpoints: GET /services, GET /services/<name>/signature, POST /services/<name>/invoke,\n")
	fmt.Printf("           POST /optimize, GET /optimize/stats\n")
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// optimizeServer answers optimization requests against the world's
// registry with a shared plan cache. It is safe for concurrent
// requests: the optimizer is built per call and the cache is
// internally synchronized.
type optimizeServer struct {
	reg      *service.Registry
	cache    *opt.PlanCache
	parallel int
}

type optimizeRequest struct {
	Query  string `json:"query"`
	Metric string `json:"metric"` // default etm
	Cache  string `json:"cache"`  // none | one-call | optimal
	K      int    `json:"k"`
}

type optimizeResponse struct {
	Plan     string    `json:"plan"`
	Cost     float64   `json:"cost"`
	Metric   string    `json:"metric"`
	Feasible bool      `json:"feasible"`
	Cached   bool      `json:"cached"`
	Stats    opt.Stats `json:"stats"`
}

func (s *optimizeServer) optimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Metric == "" {
		req.Metric = "etm"
	}
	m, ok := cost.ByName(req.Metric)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown metric %q", req.Metric), http.StatusBadRequest)
		return
	}
	mode, ok := card.ModeByName(req.Cache)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown cache mode %q", req.Cache), http.StatusBadRequest)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sch, err := s.reg.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := q.Resolve(sch); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	o := &opt.Optimizer{
		Metric:       m,
		Estimator:    card.Config{Mode: mode},
		K:            req.K,
		ChooseMethod: s.reg.MethodChooser(),
		Parallelism:  s.parallel,
		Cache:        s.cache,
		CacheSalt:    s.reg.CacheSalt(),
	}
	res, err := o.Optimize(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(optimizeResponse{
		Plan:     res.Best.Describe(),
		Cost:     res.Cost,
		Metric:   m.Name(),
		Feasible: res.Feasible,
		Cached:   res.Cached,
		Stats:    res.Stats,
	})
}

func (s *optimizeServer) stats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cache.Stats())
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/tabsvc"
)

// gatedTable wraps a tabsvc.Table so the test controls exactly when
// an invocation completes: every Invoke signals entered, then blocks
// until release closes (or the caller's context ends). That makes
// "two requests overlap in flight" deterministic instead of a sleep
// race.
type gatedTable struct {
	inner       *tabsvc.Table
	entered     chan struct{}
	release     chan struct{}
	invocations atomic.Int64
}

func newGatedTable(sig *schema.Signature, rows [][]schema.Value) *gatedTable {
	return &gatedTable{
		inner:   tabsvc.MustNew(sig, rows, tabsvc.Latency{}),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
}

func (g *gatedTable) Signature() *schema.Signature { return g.inner.Signature() }

func (g *gatedTable) Invoke(ctx context.Context, pat int, req service.Request) (service.Response, error) {
	g.invocations.Add(1)
	select {
	case g.entered <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
	case <-ctx.Done():
		return service.Response{}, ctx.Err()
	}
	return g.inner.Invoke(ctx, pat, req)
}

// newCoalesceFixture builds a single-service world behind a gate and
// a /query server with coalescing on, mirroring main()'s wiring.
func newCoalesceFixture(t *testing.T) (*gatedTable, *httptest.Server, *observability) {
	t.Helper()
	sig := &schema.Signature{
		Name: "score",
		Attrs: []schema.Attribute{
			{Name: "Player", Domain: schema.Domain{Name: "Player", Kind: schema.StringValue, DistinctValues: 4}},
			{Name: "Points", Domain: schema.Domain{Name: "Points", Kind: schema.NumberValue}},
		},
		Patterns: []schema.AccessPattern{schema.MustPattern("io")},
		Kind:     schema.Exact,
		Stats:    schema.Stats{ERSPI: 1, ResponseTime: time.Millisecond},
	}
	gate := newGatedTable(sig, [][]schema.Value{{schema.S("alice"), schema.N(7)}})
	reg := service.NewRegistry()
	reg.MustRegister(gate)

	srv := &optimizeServer{
		reg:        reg,
		cache:      opt.NewPlanCache(16),
		parallel:   1,
		revalRatio: opt.DefaultRevalidateRatio,
		coalescer:  &serve.Coalescer{},
	}
	obs := newObservability(64, time.Second, 16, 0, 0)
	mux := http.NewServeMux()
	mux.HandleFunc("/query", obs.instrument("/query", srv.query))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return gate, ts, obs
}

type queryReply struct {
	status int
	header http.Header
	body   map[string]any
}

// postQuery fires one /query and sends the decoded reply on a channel.
func postQuery(t *testing.T, url string, req map[string]any) <-chan queryReply {
	t.Helper()
	out := make(chan queryReply, 1)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("POST /query: %v", err)
			out <- queryReply{}
			return
		}
		defer resp.Body.Close()
		var decoded map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Errorf("decoding /query response: %v", err)
		}
		out <- queryReply{status: resp.StatusCode, header: resp.Header, body: decoded}
	}()
	return out
}

const coalesceQuery = `ans(P) :- score($player, P).`

// coalesceReq builds the /query body both requests share; extra
// fields (deadline_ms, trace) merge in per caller.
func coalesceReq(extra map[string]any) map[string]any {
	req := map[string]any{
		"template": coalesceQuery,
		"bindings": map[string]any{"player": "alice"},
	}
	for k, v := range extra {
		req[k] = v
	}
	return req
}

// findSpan walks a decoded trace tree for a span by name.
func findSpan(nodes []any, name string) map[string]any {
	for _, raw := range nodes {
		n, ok := raw.(map[string]any)
		if !ok {
			continue
		}
		if n["name"] == name {
			return n
		}
		if kids, ok := n["children"].([]any); ok {
			if found := findSpan(kids, name); found != nil {
				return found
			}
		}
	}
	return nil
}

func spanAttr(span map[string]any, key string) string {
	if span == nil {
		return ""
	}
	attrs, _ := span["attrs"].(map[string]any)
	v, _ := attrs[key].(string)
	return v
}

// TestQueryCoalescingSharesExecution: two identical concurrent /query
// requests run one optimize+execute; both answer the same rows, each
// under its own trace id, and the waiter's trace marks the coalesce.
func TestQueryCoalescingSharesExecution(t *testing.T) {
	gate, ts, obs := newCoalesceFixture(t)
	req := coalesceReq(map[string]any{"trace": true})

	a := postQuery(t, ts.URL, req)
	<-gate.entered // the leader's execution is in flight
	b := postQuery(t, ts.URL, req)
	time.Sleep(50 * time.Millisecond) // let b attach to the flight
	close(gate.release)

	ra, rb := <-a, <-b
	for name, r := range map[string]queryReply{"leader": ra, "waiter": rb} {
		if r.status != http.StatusOK {
			t.Fatalf("%s status %d: %v", name, r.status, r.body["error"])
		}
		rows, _ := r.body["rows"].([]any)
		if len(rows) != 1 {
			t.Fatalf("%s rows = %v", name, r.body["rows"])
		}
	}
	if n := gate.invocations.Load(); n != 1 {
		t.Fatalf("service invoked %d times for 2 coalesced requests, want 1", n)
	}

	// Per-request trace attribution: distinct ids, both returned in the
	// X-Mdq-Trace-Id header, and exactly one request marked coalesced.
	ida, idb := ra.body["trace_id"], rb.body["trace_id"]
	if ida == "" || idb == "" || ida == idb {
		t.Fatalf("trace ids not per-request: leader %v, waiter %v", ida, idb)
	}
	for name, r := range map[string]queryReply{"leader": ra, "waiter": rb} {
		if got := r.header.Get("X-Mdq-Trace-Id"); got != r.body["trace_id"] {
			t.Fatalf("%s X-Mdq-Trace-Id = %q, trace_id %v", name, got, r.body["trace_id"])
		}
	}
	marks := 0
	for name, r := range map[string]queryReply{"leader": ra, "waiter": rb} {
		tree, _ := r.body["trace"].([]any)
		span := findSpan(tree, "coalesce")
		if span == nil {
			t.Fatalf("%s trace has no coalesce span", name)
		}
		if spanAttr(span, "coalesced") == "true" {
			marks++
		}
	}
	if marks != 1 {
		t.Fatalf("%d requests marked coalesced=true, want exactly the waiter", marks)
	}
	if !strings.Contains(obs.metrics.Render(), "mdq_query_coalesced_total 1") {
		t.Fatal("mdq_query_coalesced_total did not count the waiter")
	}
}

// TestQueryCoalescingLeaderBudgetTrip: a leader whose own deadline
// trips mid-execution answers 504 without poisoning the flight — the
// live waiter re-runs the work under its own (unlimited) budget and
// still gets the rows.
func TestQueryCoalescingLeaderBudgetTrip(t *testing.T) {
	gate, ts, _ := newCoalesceFixture(t)
	defer close(gate.release)

	a := postQuery(t, ts.URL, coalesceReq(map[string]any{"deadline_ms": 150}))
	<-gate.entered
	b := postQuery(t, ts.URL, coalesceReq(nil))
	time.Sleep(50 * time.Millisecond) // b attaches before a's deadline

	ra := <-a // the gate holds a past its deadline; its budget trips
	if ra.status != http.StatusGatewayTimeout {
		t.Fatalf("leader status %d (%v), want 504", ra.status, ra.body["error"])
	}
	if ra.body["budget_exceeded"] != true {
		t.Fatalf("leader error not marked budget_exceeded: %v", ra.body)
	}

	// The waiter re-elects itself leader and re-enters the service.
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never re-ran the query after the leader's budget trip")
	}
	gate.release <- struct{}{} // let the re-run through (select in Invoke)
	rb := <-b
	if rb.status != http.StatusOK {
		t.Fatalf("waiter status %d (%v), want 200 after re-election", rb.status, rb.body["error"])
	}
	if rows, _ := rb.body["rows"].([]any); len(rows) != 1 {
		t.Fatalf("waiter rows = %v", rb.body["rows"])
	}
	if n := gate.invocations.Load(); n != 2 {
		t.Fatalf("service invoked %d times, want 2 (tripped leader + re-elected waiter)", n)
	}
}

// TestQueryCoalescingWaiterDetaches: a waiter whose own deadline
// passes mid-flight answers 504 on its own, while the leader's
// execution continues untouched and completes.
func TestQueryCoalescingWaiterDetaches(t *testing.T) {
	gate, ts, _ := newCoalesceFixture(t)

	a := postQuery(t, ts.URL, coalesceReq(nil))
	<-gate.entered
	b := postQuery(t, ts.URL, coalesceReq(map[string]any{"deadline_ms": 100}))

	rb := <-b // detaches at its deadline; the flight is still gated
	if rb.status != http.StatusGatewayTimeout {
		t.Fatalf("waiter status %d (%v), want 504", rb.status, rb.body["error"])
	}
	if rb.body["budget_exceeded"] != true {
		t.Fatalf("waiter error not marked budget_exceeded: %v", rb.body)
	}

	close(gate.release)
	ra := <-a
	if ra.status != http.StatusOK {
		t.Fatalf("leader status %d (%v), want 200 after waiter detached", ra.status, ra.body["error"])
	}
	if n := gate.invocations.Load(); n != 1 {
		t.Fatalf("service invoked %d times, want 1 — the detach must not re-run work", n)
	}
}

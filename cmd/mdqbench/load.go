package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdq/internal/serve"
)

// loadTemplate is the travel-world templated query the load clients
// drive — the same three-atom shape the e2e gate uses, with the hotel
// category as the binding so the fleet's template cache serves every
// request after the first search per category.
const loadTemplate = `
q(Conf, City, Hotel, HPrice, FPrice) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, $cat, Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    FPrice + HPrice < 2000 {0.01}.`

// loadCategories are the binding values the clients rotate through
// (the travel world's hotel categories).
var loadCategories = []string{"luxury", "standard", "budget", "hostel"}

// loadConfig carries the -load flags.
type loadConfig struct {
	url      string
	clients  int
	warmup   time.Duration
	duration time.Duration
	k        int
	out      string
	note     string
}

// runLoad drives a closed loop of concurrent clients against a
// coordinator's POST /query, reports throughput and tail latency over
// the measured window, reconciles against the server's /metrics, and
// optionally writes the serve.LoadRun JSON for loadgate.
func runLoad(cfg loadConfig) error {
	base := strings.TrimSuffix(cfg.url, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	var (
		next      atomic.Int64 // binding rotation
		totalSent atomic.Int64
		requests  atomic.Int64
		errCount  atomic.Int64
		shed      atomic.Int64
		calls     atomic.Int64
		rows      atomic.Int64
	)
	start := time.Now()
	measureFrom := start.Add(cfg.warmup)
	stopAt := measureFrom.Add(cfg.duration)

	var mu sync.Mutex
	var latencies []float64  // milliseconds, measured successes only
	var firstBytes []float64 // milliseconds to first response byte, measured successes
	var firstErr error

	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				cat := loadCategories[int(next.Add(1))%len(loadCategories)]
				body, _ := json.Marshal(map[string]any{
					"template": loadTemplate,
					"bindings": map[string]any{"cat": cat},
					"k":        cfg.k,
				})
				req, _ := http.NewRequest(http.MethodPost, base+"/query", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				reqStart := time.Now()
				var firstByte time.Duration
				req = req.WithContext(httptrace.WithClientTrace(req.Context(), &httptrace.ClientTrace{
					GotFirstResponseByte: func() { firstByte = time.Since(reqStart) },
				}))
				resp, err := client.Do(req)
				elapsed := time.Since(reqStart)
				totalSent.Add(1)
				measured := reqStart.After(measureFrom)
				if err != nil {
					if measured {
						errCount.Add(1)
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				var qr struct {
					Error string           `json:"error"`
					Rows  [][]string       `json:"rows"`
					Calls map[string]int64 `json:"calls"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if !measured {
					continue
				}
				switch {
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				case resp.StatusCode != http.StatusOK || decErr != nil:
					errCount.Add(1)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("POST /query: %s (%s)", resp.Status, qr.Error)
					}
					mu.Unlock()
				default:
					requests.Add(1)
					rows.Add(int64(len(qr.Rows)))
					for _, v := range qr.Calls {
						calls.Add(v)
					}
					mu.Lock()
					latencies = append(latencies, float64(elapsed)/float64(time.Millisecond))
					if firstByte > 0 {
						firstBytes = append(firstBytes, float64(firstByte)/float64(time.Millisecond))
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	window := time.Since(measureFrom)
	if window > cfg.duration {
		window = cfg.duration
	}

	run := serve.LoadRun{
		Note:            cfg.note,
		URL:             base,
		Clients:         cfg.clients,
		WarmupSeconds:   cfg.warmup.Seconds(),
		DurationSeconds: cfg.duration.Seconds(),
		Requests:        requests.Load(),
		Errors:          errCount.Load(),
		Shed:            shed.Load(),
		TotalSent:       totalSent.Load(),
		Calls:           calls.Load(),
		Rows:            rows.Load(),
	}
	if window > 0 {
		run.Throughput = float64(run.Requests) / window.Seconds()
	}
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		run.MeanMillis = sum / float64(len(latencies))
		run.P50Millis = serve.Percentile(latencies, 50)
		run.P95Millis = serve.Percentile(latencies, 95)
		run.P99Millis = serve.Percentile(latencies, 99)
	}
	if len(firstBytes) > 0 {
		run.FirstByteP50Millis = serve.Percentile(firstBytes, 50)
		run.FirstByteP95Millis = serve.Percentile(firstBytes, 95)
	}
	run.ServerRequests, run.ServerCalls = scrapeMetrics(client, base)

	fmt.Printf("load: %d clients × %s (after %s warmup) against %s\n",
		cfg.clients, cfg.duration, cfg.warmup, base)
	fmt.Printf("  %d ok, %d shed, %d errors (%d sent incl. warmup)\n",
		run.Requests, run.Shed, run.Errors, run.TotalSent)
	fmt.Printf("  throughput %.1f req/s; latency ms p50 %.1f, p95 %.1f, p99 %.1f (mean %.1f)\n",
		run.Throughput, run.P50Millis, run.P95Millis, run.P99Millis, run.MeanMillis)
	if run.FirstByteP50Millis > 0 {
		fmt.Printf("  first byte ms p50 %.1f, p95 %.1f\n", run.FirstByteP50Millis, run.FirstByteP95Millis)
	}
	fmt.Printf("  %d service calls, %d rows; server-side: %.0f requests, %.0f calls\n",
		run.Calls, run.Rows, run.ServerRequests, run.ServerCalls)

	if run.Requests == 0 {
		if firstErr != nil {
			return fmt.Errorf("load run produced no successful requests (first error: %v)", firstErr)
		}
		return fmt.Errorf("load run produced no successful requests")
	}
	if cfg.out != "" {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", cfg.out)
	}
	return nil
}

// scrapeMetrics reads the server's Prometheus text exposition and
// returns the totals the load run reconciles against: requests
// counted on /query (all status codes) and logical service calls
// charged. Zeros when the endpoint is unavailable.
func scrapeMetrics(client *http.Client, base string) (requests, calls float64) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0
	}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "mdq_requests_total{") &&
			strings.Contains(line, `endpoint="/query"`):
			requests += sampleValue(line)
		case strings.HasPrefix(line, "mdq_service_calls_total"):
			calls += sampleValue(line)
		}
	}
	return requests, calls
}

// sampleValue parses the value of one exposition line.
func sampleValue(line string) float64 {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return 0
	}
	return v
}

// Command mdqbench regenerates every empirical table and figure of
// the paper — Table 1, Examples 4.1 and 5.1, Figure 8, both panels
// of Figure 11, the §6 multithreading test and the bioinformatics
// generalization — plus the repository's ablations, printing each
// report with the paper's values alongside ours.
//
// Usage:
//
//	mdqbench [-only fig11]   # substring filter on report titles
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"mdq/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only reports whose title contains this substring (case-insensitive)")
	flag.Parse()

	start := time.Now()
	reports, err := experiments.All(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, rep := range reports {
		if *only != "" && !strings.Contains(strings.ToLower(rep.Title), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(rep)
		printed++
	}
	fmt.Printf("%d reports in %s\n", printed, time.Since(start).Round(time.Millisecond))
}

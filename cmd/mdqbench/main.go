// Command mdqbench regenerates every empirical table and figure of
// the paper — Table 1, Examples 4.1 and 5.1, Figure 8, both panels
// of Figure 11, the §6 multithreading test and the bioinformatics
// generalization — plus the repository's ablations, printing each
// report with the paper's values alongside ours.
//
// Usage:
//
//	mdqbench [-only fig11]   # substring filter on report titles
//
// With -load it instead drives a closed-loop load run against a
// running mdqserve (coordinator or single-process): N concurrent
// clients POST templated /query requests, rotating the hotel-category
// binding, and the run reports throughput and p50/p95/p99 latency
// over the measured window, reconciled against the server's /metrics.
// The JSON written by -out is the committed-baseline format
// cmd/loadgate compares later runs against:
//
//	mdqbench -load -url http://127.0.0.1:8080 -clients 8 \
//	    -warmup 2s -duration 10s -out load_run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"mdq/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only reports whose title contains this substring (case-insensitive)")
	load := flag.Bool("load", false, "run a closed-loop load test against -url instead of the paper reports")
	url := flag.String("url", "http://127.0.0.1:8080", "serving endpoint the load run drives")
	clients := flag.Int("clients", 8, "closed-loop concurrent clients")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup phase excluded from measurement")
	duration := flag.Duration("duration", 10*time.Second, "measured load duration")
	k := flag.Int("k", 5, "answers per query in load mode")
	out := flag.String("out", "", "write the load-run JSON (loadgate baseline format) to this file")
	note := flag.String("note", "", "provenance note stored in the load-run JSON")
	flag.Parse()

	if *load {
		if err := runLoad(loadConfig{
			url: *url, clients: *clients, warmup: *warmup,
			duration: *duration, k: *k, out: *out, note: *note,
		}); err != nil {
			log.Fatalf("mdqbench -load: %v", err)
		}
		return
	}

	start := time.Now()
	reports, err := experiments.All(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for _, rep := range reports {
		if *only != "" && !strings.Contains(strings.ToLower(rep.Title), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(rep)
		printed++
	}
	fmt.Printf("%d reports in %s\n", printed, time.Since(start).Round(time.Millisecond))
}

// Command mdqopt optimizes a multi-domain query against one of the
// built-in simulated worlds and prints the chosen plan, its cost and
// the search statistics.
//
// Usage:
//
//	mdqopt [-world travel|bio|mashup|zipf] [-metric etm|rr|sum|bottleneck|tts]
//	       [-cache none|one-call|optimal] [-k 10] [-parallel -1] [-repeat 1]
//	       [-dot] [-query "..."]
//	       [-template "... $param ..." -bind param=v1 -bind param=v2 ...]
//
// Without -query the world's canonical query is used (the paper's
// Figure 3 for the travel world).
//
// With -template, the query is a parameterized template and each
// -bind flag supplies one binding set ("name=value,name2=value2");
// all bindings are optimized through a shared template-level plan
// cache, demonstrating that N bindings cost one branch-and-bound
// search plus N cheap cost phases. Each binding line shows the
// value-sensitive estimate next to the uniform-model cost, so skew
// picked up by the profiled histograms is directly visible (try
// -world zipf, whose catalog tags follow a Zipf law).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/opt"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

// bindList collects repeated -bind flags, one binding set each.
type bindList []string

func (b *bindList) String() string     { return strings.Join(*b, "; ") }
func (b *bindList) Set(s string) error { *b = append(*b, s); return nil }

func main() {
	var binds bindList
	var (
		worldName = flag.String("world", "travel", "built-in world: travel, bio, mashup or zipf")
		metric    = flag.String("metric", "etm", "cost metric: etm, rr, sum, bottleneck, tts")
		cache     = flag.String("cache", "one-call", "caching model: none, one-call, optimal")
		k         = flag.Int("k", 10, "number of answers to optimize for (0 = all)")
		queryText = flag.String("query", "", "query in datalog-like syntax (default: the world's canonical query)")
		tplText   = flag.String("template", "", "parameterized query template with $param placeholders")
		dot       = flag.Bool("dot", false, "print the plan in Graphviz DOT instead of ASCII")
		verbose   = flag.Bool("v", false, "also list alternative plans")
		parallel  = flag.Int("parallel", opt.AutoParallelism, "optimizer search workers (-1 = one per CPU, 1 = sequential)")
		repeat    = flag.Int("repeat", 1, "optimize the query N times through a shared plan cache (shows cache effectiveness)")
	)
	flag.Var(&binds, "bind", "binding set for -template as name=value[,name=value...]; repeatable")
	flag.Parse()

	reg, text, err := world(*worldName)
	if err != nil {
		log.Fatal(err)
	}
	if *queryText != "" {
		text = *queryText
	}
	m, ok := cost.ByName(*metric)
	if !ok {
		log.Fatalf("unknown metric %q", *metric)
	}
	mode, ok := card.ModeByName(*cache)
	if !ok {
		log.Fatalf("unknown cache mode %q", *cache)
	}
	sch, err := reg.Schema()
	if err != nil {
		log.Fatal(err)
	}

	o := &opt.Optimizer{
		Metric:       m,
		Estimator:    card.Config{Mode: mode},
		K:            *k,
		ChooseMethod: reg.MethodChooser(),
		Parallelism:  *parallel,
		Epochs:       reg,
	}
	if *verbose {
		o.KeepAlternatives = 10
	}

	if *tplText != "" {
		optimizeTemplate(o, reg, sch, *tplText, binds, *dot, m)
		return
	}

	q, err := cq.Parse(text)
	if err != nil {
		log.Fatal(err)
	}
	if err := q.Resolve(sch); err != nil {
		log.Fatal(err)
	}

	var pc *opt.PlanCache
	if *repeat > 1 {
		pc = opt.NewPlanCache(16)
		o.Cache = pc
	}
	start := time.Now()
	res, err := o.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	firstTime := time.Since(start)
	for i := 1; i < *repeat; i++ {
		if res, err = o.Optimize(q); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("query: %s\n\n", q)
	if *dot {
		fmt.Print(res.Best.DOT())
	} else {
		fmt.Print(res.Best.ASCII())
	}
	fmt.Printf("\n%s cost: %.2f  (feasible for k=%d: %v, estimated answers: %.1f)\n",
		m.Name(), res.Cost, *k, res.Feasible, res.Best.OutputNode().TOut)
	if uni := o.UniformCost(res); uni != res.Cost {
		fmt.Printf("uniform-model cost: %.2f (value distributions moved the estimate %.1f×)\n",
			uni, res.Cost/uni)
	}
	fmt.Printf("search: %d/%d permissible assignments, %d states (%d pruned), %d plans costed, %d fetch vectors (%v, parallel=%d)\n",
		res.Stats.PermissibleAssignments, res.Stats.CandidateAssignments,
		res.Stats.StatesVisited, res.Stats.StatesPruned, res.Stats.Leaves, res.Stats.FetchVectors,
		firstTime.Round(time.Millisecond), *parallel)
	if pc != nil {
		cs := pc.Stats()
		fmt.Printf("plan cache: %d hits, %d misses over %d optimizations (last served from cache: %v)\n",
			cs.Hits, cs.Misses, *repeat, res.Cached)
	}
	if *verbose {
		fmt.Println("\nalternatives:")
		for i, alt := range res.Alternatives {
			fmt.Printf("  %2d. %-60s %8.2f\n", i+1, alt.Plan.Describe(), alt.Cost)
		}
	}
	os.Exit(0)
}

// optimizeTemplate drives the template-level cache: every -bind set
// is bound, resolved and optimized through one shared cache; the
// counters afterwards show one search serving all bindings.
func optimizeTemplate(o *opt.Optimizer, reg *service.Registry, sch *schema.Schema, text string, binds bindList, dot bool, m cost.Metric) {
	tpl, err := cq.ParseTemplate(text)
	if err != nil {
		log.Fatal(err)
	}
	if len(binds) == 0 {
		log.Fatalf("-template requires at least one -bind (parameters: %v)", tpl.Params())
	}
	pc := opt.NewPlanCache(64)
	o.Cache = pc
	o.CacheSalt = reg.CacheSalt()
	reg.SubscribeEpochs(pc, pc.InvalidateService)
	for i, b := range binds {
		values, err := cq.ParseBindings(b)
		if err != nil {
			log.Fatal(err)
		}
		q, err := tpl.Bind(values)
		if err != nil {
			log.Fatal(err)
		}
		if err := q.Resolve(sch); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := o.OptimizeTemplate(q)
		if err != nil {
			log.Fatal(err)
		}
		took := time.Since(start)
		how := "searched"
		switch {
		case res.TemplateHit && res.Revalidated:
			how = "template hit (revalidated)"
		case res.TemplateHit:
			how = "template hit"
		case res.Cached:
			how = "exact hit"
		}
		if res.BindingClass != "" {
			how += ", class " + res.BindingClass
		}
		fmt.Printf("binding %d (%s): %s  %s cost %.2f (uniform %.2f)  [%s, %v]\n",
			i+1, b, res.Best.Describe(), m.Name(), res.Cost, o.UniformCost(res),
			how, took.Round(time.Microsecond))
		if i == 0 {
			fmt.Println()
			if dot {
				fmt.Print(res.Best.DOT())
			} else {
				fmt.Print(res.Best.ASCII())
			}
			fmt.Println()
		}
	}
	cs := pc.Stats()
	fmt.Printf("\ntemplate cache: %d searches for %d bindings (%d template hits, %d revalidations, %d divergences, %d borrowed serves, %d binding classes)\n",
		cs.Searches, len(binds), cs.TemplateHits, cs.Revalidations, cs.Divergences, cs.BorrowedServes, cs.Classes)
	os.Exit(0)
}

func world(name string) (*service.Registry, string, error) {
	switch name {
	case "travel":
		w := simweb.NewTravelWorld(simweb.TravelOptions{})
		return w.Registry, simweb.RunningExampleText, nil
	case "bio":
		w := simweb.NewBioWorld()
		return w.Registry, simweb.BioExampleText, nil
	case "mashup":
		w := simweb.NewMashupWorld()
		return w.Registry, simweb.MashupExampleText, nil
	case "zipf":
		w := simweb.NewZipfWorld(0, 0, 0)
		return w.Registry, simweb.ZipfExampleText, nil
	default:
		return nil, "", fmt.Errorf("unknown world %q (want travel, bio, mashup or zipf)", name)
	}
}

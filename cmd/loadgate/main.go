// Command loadgate compares one `mdqbench -load` run against a
// committed baseline and fails on throughput or tail-latency
// regression, turning the CI load smoke into a tracked-threshold
// serving gate (the benchgate of the serving path).
//
// Usage:
//
//	mdqbench -load -out load_run.json ... &&
//	    go run ./cmd/loadgate -baseline LOAD_BASELINE.json -run load_run.json
//
//	go run ./cmd/loadgate -baseline LOAD_BASELINE.json -run load_run.json -update
//
// Both files are the serve.LoadRun JSON `mdqbench -load -out` writes.
// The run fails the gate when its throughput drops below baseline ÷
// throughput-tolerance, or its p95/p99 latency exceeds baseline ×
// latency-tolerance. Absolute numbers are hardware-dependent, so the
// tolerances are deliberately generous: the gate catches gross
// regressions (a lost cache fast path, an accidental serialization
// point), not percent-level drift. A run with zero successful
// requests always fails. Refresh the baseline on the reference
// machine with `make load-baseline`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mdq/internal/serve"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "LOAD_BASELINE.json", "baseline load-run file")
		runPath      = flag.String("run", "load_run.json", "measured load-run file (mdqbench -load -out)")
		tputTol      = flag.Float64("throughput-tolerance", 3, "fail when throughput < baseline ÷ tolerance")
		latTol       = flag.Float64("latency-tolerance", 4, "fail when p95/p99 > baseline × tolerance")
		update       = flag.Bool("update", false, "copy the measured run over the baseline")
	)
	flag.Parse()

	run, err := readRun(*runPath)
	if err != nil {
		fatalf("%v", err)
	}
	if run.Requests == 0 {
		fatalf("run %s has zero successful requests", *runPath)
	}

	if *update {
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			fatalf("encoding baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", *baselinePath, err)
		}
		fmt.Printf("loadgate: wrote %s from %s\n", *baselinePath, *runPath)
		return
	}

	base, err := readRun(*baselinePath)
	if err != nil {
		fatalf("%v (generate it with -update)", err)
	}

	fmt.Printf("loadgate: run %s vs baseline %s (throughput ÷%.1f, latency ×%.1f)\n",
		*runPath, *baselinePath, *tputTol, *latTol)
	failed := 0
	check := func(name string, got, ref float64, bad bool) {
		status := "ok"
		if bad {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  %-5s %-16s %10.1f  (baseline %.1f)\n", status, name, got, ref)
	}
	check("throughput_rps", run.Throughput, base.Throughput,
		base.Throughput > 0 && run.Throughput < base.Throughput / *tputTol)
	check("p95_ms", run.P95Millis, base.P95Millis,
		base.P95Millis > 0 && run.P95Millis > base.P95Millis**latTol)
	check("p99_ms", run.P99Millis, base.P99Millis,
		base.P99Millis > 0 && run.P99Millis > base.P99Millis**latTol)
	if run.Errors > 0 {
		fmt.Printf("  note  %d measured-window error(s) in the run\n", run.Errors)
	}
	if failed > 0 {
		fatalf("%d serving metric(s) regressed beyond tolerance", failed)
	}
	fmt.Println("loadgate: no regressions")
}

// readRun loads one serve.LoadRun JSON file.
func readRun(path string) (serve.LoadRun, error) {
	var run serve.LoadRun
	data, err := os.ReadFile(path)
	if err != nil {
		return run, fmt.Errorf("reading %s: %v", path, err)
	}
	if err := json.Unmarshal(data, &run); err != nil {
		return run, fmt.Errorf("parsing %s: %v", path, err)
	}
	return run, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgate: "+format+"\n", args...)
	os.Exit(1)
}

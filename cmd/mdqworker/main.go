// Command mdqworker runs one distributed worker: a simulated deep-web
// world served over HTTP (like mdqserve) plus the internal/dist
// worker protocol, so an mdqserve coordinator (-workers) can shard
// branch-and-bound searches across a fleet of these processes, share
// the incumbent bound mid-search, gossip statistics-epoch bumps into
// the local plan cache, warm it with serialized template skeletons —
// and, with -execute (the default), run plan *fragments* near this
// worker's services, streaming the produced tuples back to the
// coordinator.
//
// Usage:
//
//	mdqworker [-addr :8090] [-world travel|bio|mashup|zipf]
//	          [-parallel 1] [-plancache 128] [-cachettl 0] [-cachebytes 0]
//	          [-cache-file worker-cache.json] [-scale 0]
//	          [-execute] [-buffer 128] [-feedback] [-feedback-min-calls 4]
//	          [-feedback-min-drift 0.1] [-rescache 4096] [-rescache-bytes N]
//	          [-rescache-ttl 0] [-pprof]
//
// -rescache bounds the shared service-call result cache consulted by
// fragment executions (0 disables it): invocations repeated with
// identical input bindings — across fragments, queries and requests —
// are answered locally until the service's statistics epoch moves
// (local feedback refresh or gossiped remote bump), which drops its
// entries. Hit/miss/evict counters surface on /metrics as
// mdq_result_cache_events_total.
//
// -pprof mounts net/http/pprof under /debug/pprof/ (off by default;
// enable only on trusted networks).
//
// Fragment and shard-search requests carrying a trace header record
// their spans into a worker-local trace and piggyback them on the
// result frame, so the coordinator can splice them into the query's
// span tree.
//
// Endpoints:
//
//	POST /dist/search     one shard search (query text + shard + bound)
//	POST /dist/sync       incumbent bound exchange for a running search
//	POST /dist/gossip     statistics-epoch bumps → plan cache invalidation
//	POST /dist/execute    one plan fragment → streamed tuple batches (ndjson)
//	GET  /dist/templates  export serialized template cache entries
//	POST /dist/templates  import serialized template cache entries
//	GET  /dist/info       services, epochs, cache counters
//	GET  /dist/health     liveness probe (the coordinator's membership check)
//	GET  /services, /services/<name>/…   the world's services (httpwrap)
//
// With -execute, fragment executions run under this worker's own
// feedback policy (-feedback*): traffic that flowed through the local
// services refreshes their profiles and bumps worker-local statistics
// epochs, which fragment results piggyback back to the coordinator —
// the reverse gossip path that converges every template cache in the
// fleet.
//
// With -cache-file the template cache is loaded at startup (entries
// whose distribution fingerprints disagree with the local statistics
// enter stale and revalidate on first use) and saved on SIGINT or
// SIGTERM; pending feedback observations are flushed into the
// profiles first, so persisted entries carry the statistics they were
// priced under.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"mdq/internal/dist"
	"mdq/internal/exec"
	"mdq/internal/httpwrap"
	"mdq/internal/opt"
	"mdq/internal/rescache"
	"mdq/internal/serve"
	"mdq/internal/service"
	"mdq/internal/simweb"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		worldName     = flag.String("world", "travel", "built-in world: travel, bio, mashup or zipf")
		scale         = flag.Float64("scale", 0, "sleep scale for simulated latencies (0 = report only)")
		parallel      = flag.Int("parallel", opt.AutoParallelism, "in-process search workers per shard (-1 = one per CPU)")
		planCache     = flag.Int("plancache", 128, "plan cache capacity in entries")
		cacheTTL      = flag.Duration("cachettl", 0, "plan cache entry TTL (0 = no expiry)")
		cacheBytes    = flag.Int64("cachebytes", 0, "approximate plan cache byte budget (0 = unlimited)")
		cacheFile     = flag.String("cache-file", "", "load the template cache from this file at start and save it on SIGINT/SIGTERM")
		execute       = flag.Bool("execute", true, "serve fragment execution (POST /dist/execute)")
		bufferSize    = flag.Int("buffer", exec.DefaultBufferSize, "fragment executor edge buffer in tuples (larger = fewer stalls, more memory; smaller = tighter memory, earlier backpressure)")
		rescacheN     = flag.Int("rescache", rescache.DefaultMaxEntries, "shared service-call result cache capacity in entries (0 disables)")
		rescacheBytes = flag.Int64("rescache-bytes", rescache.DefaultMaxBytes, "approximate result cache byte budget (<0 = unlimited)")
		rescacheTTL   = flag.Duration("rescache-ttl", 0, "result cache entry TTL (0 = no expiry; epochs still invalidate)")

		feedback = flag.Bool("feedback", true, "fold fragment-execution traffic back into local service profiles")
		minCalls = flag.Int64("feedback-min-calls", 4, "observed calls required before a profile refresh")
		minDrift = flag.Float64("feedback-min-drift", 0.1, "relative statistics drift required before a refresh")

		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "max time to drain in-flight requests on shutdown")
		pprofFlag    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	)
	flag.Parse()

	reg, err := worldRegistry(*worldName)
	if err != nil {
		log.Fatal(err)
	}
	reg.ObserveAll()

	pc := opt.NewPlanCacheWith(opt.Policy{Capacity: *planCache, TTL: *cacheTTL, MaxBytes: *cacheBytes})
	worker := dist.NewWorker(reg, pc)
	worker.Parallelism = *parallel
	worker.ExecuteDisabled = !*execute
	worker.BufferSize = *bufferSize
	if *feedback {
		worker.Feedback = &service.FeedbackPolicy{MinCalls: *minCalls, MinDrift: *minDrift}
	}

	if *cacheFile != "" {
		if n, err := pc.LoadFile(*cacheFile, reg); err != nil {
			if !os.IsNotExist(err) {
				log.Fatalf("loading cache file: %v", err)
			}
		} else {
			fmt.Printf("warmed %d template entries from %s\n", n, *cacheFile)
		}
	}

	mux, names := httpwrap.ServeRegistry(reg, httpwrap.HandlerOptions{SleepScale: *scale})
	metrics := serve.NewMetrics()
	if *rescacheN != 0 {
		store := rescache.New(rescache.Config{MaxEntries: *rescacheN, MaxBytes: *rescacheBytes, TTL: *rescacheTTL})
		store.Observer = rescache.MetricsObserver(metrics)
		store.Bind(reg)
		worker.ResultCache = store
	}
	mux.Handle("/dist/", instrumentWorker(metrics, worker.Handler()))
	mux.Handle("/metrics", metrics.Handler())
	if *pprofFlag {
		// Opt-in only: profiles expose internals, so the endpoints are
		// mounted solely behind the flag (enable on trusted networks).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Printf("mdqworker: %s world (%v) on %s (execute=%v)\n", *worldName, names, *addr, *execute)
	fmt.Printf("endpoints: POST /dist/search, /dist/sync, /dist/gossip, /dist/execute; GET|POST /dist/templates; GET /dist/info; GET /dist/health; GET /metrics\n")

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("received %v: draining in-flight requests\n", s)
	}

	// Drain in-flight fragment executions and searches before the
	// feedback flush and cache save, so what they learned is persisted.
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if n := reg.RefreshObserved(); n > 0 {
		fmt.Printf("flushed pending feedback into %d profile(s)\n", n)
	}
	if *cacheFile != "" {
		if err := pc.SaveFile(*cacheFile); err != nil {
			log.Fatalf("saving cache file: %v", err)
		}
		fmt.Printf("saved template cache to %s\n", *cacheFile)
	}
}

// statusWriter records the status a worker endpoint returned.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// Flush keeps the fragment stream's flushing working through the
// wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrumentWorker counts and times the /dist protocol endpoints into
// the worker's metrics registry.
func instrumentWorker(m *serve.Metrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight := m.Gauge("mdq_worker_inflight_requests", "Protocol requests currently executing.")
		inflight.Add(1)
		defer inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.CounterL("mdq_worker_requests_total",
			"Protocol requests by endpoint and status code.",
			"endpoint", r.URL.Path, "code", strconv.Itoa(sw.status)).Inc()
		m.HistogramL("mdq_worker_request_seconds",
			"Protocol request latency.", nil, "endpoint", r.URL.Path).Observe(time.Since(start).Seconds())
	})
}

// worldRegistry builds the named simulated world.
func worldRegistry(name string) (*service.Registry, error) {
	switch name {
	case "travel":
		return simweb.NewTravelWorld(simweb.TravelOptions{}).Registry, nil
	case "bio":
		return simweb.NewBioWorld().Registry, nil
	case "mashup":
		return simweb.NewMashupWorld().Registry, nil
	case "zipf":
		return simweb.NewZipfWorld(0, 0, 0).Registry, nil
	default:
		return nil, fmt.Errorf("unknown world %q", name)
	}
}

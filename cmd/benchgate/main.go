// Command benchgate compares `go test -bench` output against a
// committed baseline and fails on regression, turning the CI
// benchmark smoke into a tracked-threshold perf gate.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkOptimize -benchtime=3x . \
//	    | go run ./cmd/benchgate -baseline BENCH_BASELINE.json [-tolerance 2.5]
//
//	go test -run=NONE -bench=BenchmarkOptimize -benchtime=3x . \
//	    | go run ./cmd/benchgate -baseline BENCH_BASELINE.json -update
//
// The baseline maps benchmark names (GOMAXPROCS suffix stripped) to
// ns/op. A measured benchmark fails the gate when it is slower than
// baseline × tolerance; benchmarks absent from the baseline are
// reported but do not fail (add them with -update). Absolute ns/op
// are hardware-dependent, so the tolerance is deliberately generous:
// the gate catches gross regressions (an accidentally quadratic
// search, a lost fast path), not percent-level drift. Refresh the
// baseline on the reference machine with `make bench-baseline`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed file format.
type Baseline struct {
	// Note documents provenance (machine, date, command).
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name → nanoseconds per operation.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkOptimize/parallel=1-8   3   12345678 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file")
		tolerance    = flag.Float64("tolerance", 2.5, "fail when measured > baseline × tolerance")
		update       = flag.Bool("update", false, "write the measured values as the new baseline")
		note         = flag.String("note", "", "provenance note stored with -update")
	)
	flag.Parse()

	measured := map[string]float64{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if _, seen := measured[m[1]]; !seen {
			order = append(order, m[1])
		}
		measured[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		fatalf("reading bench output: %v", err)
	}
	if len(measured) == 0 {
		fatalf("no benchmark results on stdin (did -bench match anything?)")
	}

	if *update {
		b := Baseline{Note: *note, NsPerOp: measured}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatalf("encoding baseline: %v", err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatalf("writing %s: %v", *baselinePath, err)
		}
		fmt.Printf("\nbenchgate: wrote %d entries to %s\n", len(measured), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("reading baseline %s: %v (generate it with -update)", *baselinePath, err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}

	fmt.Printf("\nbenchgate: tolerance %.2f× against %s\n", *tolerance, *baselinePath)
	failed := 0
	for _, name := range order {
		got := measured[name]
		ref, ok := base.NsPerOp[name]
		if !ok {
			fmt.Printf("  NEW   %-50s %12.0f ns/op (not in baseline)\n", name, got)
			continue
		}
		ratio := got / ref
		status := "ok"
		if got > ref**tolerance {
			status = "FAIL"
			failed++
		}
		fmt.Printf("  %-5s %-50s %12.0f ns/op  (baseline %.0f, %.2f×)\n", status, name, got, ref, ratio)
	}
	var missing []string
	for name := range base.NsPerOp {
		if _, ok := measured[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("  GONE  %-50s (in baseline, not measured)\n", name)
	}
	if failed > 0 {
		fatalf("%d benchmark(s) regressed beyond %.2f× the baseline", failed, *tolerance)
	}
	fmt.Println("benchgate: no regressions")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

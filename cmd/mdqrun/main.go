// Command mdqrun optimizes and executes a multi-domain query end to
// end against a built-in world (or a remote mdqserve endpoint) and
// prints the ranked answers with per-service call accounting.
//
// Usage:
//
//	mdqrun [-world travel|bio|mashup|zipf] [-remote http://host:port]
//	       [-metric etm] [-cache one-call] [-k 10] [-sim] [-query "..."]
//	       [-template "... $param ..." -bind "param=value,..."]
//	       [-feedback] [-buffer 128] [-trace] [-rescache 4096]
//
// -bind accepts several binding sets separated by ';' — the template
// is optimized (through a template cache, one search skeleton serving
// all bindings) and executed once per set, with a shared service-call
// result cache (-rescache; 0 disables) carrying results across the
// runs, so overlapping bindings re-invoke only what they don't share.
// The per-set answers are followed by the cache's hit/miss counters —
// the single-process view of the server's cross-query sharing layer.
//
// With -trace the run records a span trace — optimizer phases, plan
// nodes with estimated vs observed cardinalities, individual service
// calls — and prints the explain-style tree after the answers.
//
// With -sim the plan runs on the deterministic virtual-time
// simulator and the makespan is reported; otherwise the concurrent
// executor runs it for real.
//
// With -template/-bind a parameterized query is bound before
// optimization; with -feedback the executed traffic is folded back
// into the observed service profiles afterwards and the refreshed
// statistics epochs are printed — one turn of the adaptive loop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/httpwrap"
	"mdq/internal/opt"
	"mdq/internal/rescache"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/sim"
	"mdq/internal/simweb"
	"mdq/internal/trace"
)

func main() {
	var (
		worldName = flag.String("world", "travel", "built-in world: travel, bio, mashup or zipf")
		remote    = flag.String("remote", "", "connect to a remote mdqserve endpoint instead")
		metric    = flag.String("metric", "etm", "cost metric")
		cache     = flag.String("cache", "one-call", "caching model: none, one-call, optimal")
		k         = flag.Int("k", 10, "answers to produce (0 = all)")
		useSim    = flag.Bool("sim", false, "run on the virtual-time simulator")
		expand    = flag.Bool("expand", false, "apply the §7 off-query expansion when the query is not executable")
		queryText = flag.String("query", "", "query text (default: the world's canonical query)")
		tplText   = flag.String("template", "", "parameterized query template with $param placeholders")
		bindText  = flag.String("bind", "", "bindings for -template as name=value[,name=value...]")
		feedback  = flag.Bool("feedback", false, "fold executed traffic back into observed service profiles")
		parallel  = flag.Int("parallel", opt.AutoParallelism, "optimizer search workers (-1 = one per CPU, 1 = sequential)")
		buffer    = flag.Int("buffer", exec.DefaultBufferSize, "streaming executor edge buffer in tuples (larger = fewer stalls, more memory; smaller = tighter memory, earlier backpressure)")
		doTrace   = flag.Bool("trace", false, "record a span trace of optimization and execution and print the explain-style tree")
		rescacheN = flag.Int("rescache", rescache.DefaultMaxEntries, "shared result cache entries across ';'-separated binding sets (0 disables)")
	)
	flag.Parse()
	ctx := context.Background()

	var (
		reg  *service.Registry
		text string
		err  error
	)
	if *remote != "" {
		reg, err = httpwrap.DialRegistry(ctx, *remote, nil)
		if err != nil {
			log.Fatal(err)
		}
		text = *queryText
		if text == "" {
			log.Fatal("-query is required with -remote")
		}
	} else {
		reg, text, err = world(*worldName)
		if err != nil {
			log.Fatal(err)
		}
		if *queryText != "" {
			text = *queryText
		}
	}
	m, ok := cost.ByName(*metric)
	if !ok {
		log.Fatalf("unknown metric %q", *metric)
	}
	mode, ok := card.ModeByName(*cache)
	if !ok {
		log.Fatalf("unknown cache mode %q", *cache)
	}
	if *feedback {
		reg.ObserveAll()
	}

	sch, err := reg.Schema()
	if err != nil {
		log.Fatal(err)
	}
	type boundQuery struct {
		label string
		q     *cq.Query
	}
	var queries []boundQuery
	if *tplText != "" {
		tpl, terr := cq.ParseTemplate(*tplText)
		if terr != nil {
			log.Fatal(terr)
		}
		for _, part := range strings.Split(*bindText, ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			values, berr := cq.ParseBindings(part)
			if berr != nil {
				log.Fatal(berr)
			}
			q, berr := tpl.Bind(values)
			if berr != nil {
				log.Fatal(berr)
			}
			queries = append(queries, boundQuery{label: part, q: q})
		}
		if len(queries) == 0 {
			log.Fatal("-template requires at least one -bind set")
		}
	} else {
		q, perr := cq.Parse(text)
		if perr != nil {
			log.Fatal(perr)
		}
		queries = append(queries, boundQuery{q: q})
	}

	// Several binding sets share one template cache (one search
	// skeleton, per-binding re-costing) and one service-call result
	// cache, so overlapping bindings only pay for what they don't
	// share — the CLI view of the server's cross-query sharing layer.
	sharing := len(queries) > 1
	var pc *opt.PlanCache
	var store *rescache.Store
	if sharing {
		pc = opt.NewPlanCacheWith(opt.Policy{Capacity: 64})
		reg.SubscribeEpochs(pc, pc.InvalidateService)
		if *rescacheN != 0 {
			store = rescache.New(rescache.Config{MaxEntries: *rescacheN})
			store.Bind(reg)
		}
	}

	for qi, bq := range queries {
		if sharing {
			if qi > 0 {
				fmt.Println()
			}
			fmt.Printf("== bindings: %s\n", bq.label)
		}
		runQuery(ctx, reg, sch, bq.q, runConfig{
			metric: m, mode: mode, k: *k, useSim: *useSim, expand: *expand,
			feedback: *feedback, parallel: *parallel, buffer: *buffer,
			doTrace: *doTrace, template: sharing, planCache: pc, store: store,
		})
	}
	if store != nil {
		st := store.Stats()
		fmt.Printf("\nresult cache: hits=%d misses=%d entries=%d\n", st.Hits, st.Misses, st.Entries)
	}
}

// runConfig carries the per-run knobs of runQuery.
type runConfig struct {
	metric    cost.Metric
	mode      card.CacheMode
	k         int
	useSim    bool
	expand    bool
	feedback  bool
	parallel  int
	buffer    int
	doTrace   bool
	template  bool
	planCache *opt.PlanCache
	store     *rescache.Store
}

// runQuery optimizes and executes one bound query and prints its
// answers, call accounting and optional trace.
func runQuery(ctx context.Context, reg *service.Registry, sch *schema.Schema, q *cq.Query, cfg runConfig) {
	if err := q.Resolve(sch); err != nil {
		log.Fatal(err)
	}

	if cfg.expand {
		eq, added, eerr := opt.Expand(q, sch, 2)
		if eerr != nil {
			log.Fatal(eerr)
		}
		if added > 0 {
			fmt.Printf("expanded with %d off-query atom(s): %s\n", added, eq)
		}
		q = eq
	}
	var qtrace *trace.Trace
	var rootSp *trace.Span
	if cfg.doTrace {
		qtrace = trace.New("")
		rootSp = qtrace.Root("query")
	}
	o := &opt.Optimizer{Metric: cfg.metric, Estimator: card.Config{Mode: cfg.mode}, K: cfg.k,
		ChooseMethod: reg.MethodChooser(), Parallelism: cfg.parallel, Epochs: reg,
		Cache: cfg.planCache, CacheSalt: reg.CacheSalt()}
	osp := rootSp.Child("optimize")
	o.Span = osp
	var res *opt.Result
	var err error
	if cfg.template && cfg.planCache != nil {
		res, err = o.OptimizeTemplate(q)
	} else {
		res, err = o.Optimize(q)
	}
	osp.End()
	if err != nil {
		log.Fatal(err)
	}
	costLine := fmt.Sprintf("%s cost %.2f", cfg.metric.Name(), res.Cost)
	// Show the uniform-model estimate when profiled value
	// distributions moved this binding's cost away from it.
	if uni := o.UniformCost(res); uni != res.Cost {
		costLine += fmt.Sprintf(", uniform %.2f", uni)
	}
	fmt.Printf("plan: %s   (%s)\n\n", res.Best.Describe(), costLine)

	var (
		rows  [][]string
		calls map[string]int64
		extra string
	)
	if cfg.useSim {
		s := &sim.Simulator{Registry: reg, Cache: cfg.mode, K: cfg.k}
		out, err := s.Run(ctx, res.Best)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range out.Rows {
			rows = append(rows, render(r))
		}
		calls = out.Stats.Calls
		extra = fmt.Sprintf("virtual makespan: %.1fs", out.Makespan.Seconds())
	} else {
		r := &exec.Runner{Registry: reg, Cache: cfg.mode, K: cfg.k, BufferSize: cfg.buffer}
		if cfg.store != nil {
			r.ResultCache = cfg.store
		}
		if cfg.feedback {
			r.Feedback = &service.FeedbackPolicy{}
		}
		esp := rootSp.Child("execute")
		out, err := r.Run(trace.With(ctx, esp), res.Best)
		esp.End()
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range out.Rows {
			rows = append(rows, render(row))
		}
		calls = out.Stats.Calls
		extra = fmt.Sprintf("wall time: %s", out.Elapsed)
		if out.FirstRow > 0 {
			extra += fmt.Sprintf(" (first row after %s)", out.FirstRow)
		}
	}

	head := make([]string, len(q.Head))
	for i, v := range q.Head {
		head[i] = string(v)
	}
	fmt.Println(strings.Join(head, " | "))
	for _, r := range rows {
		fmt.Println(strings.Join(r, " | "))
	}
	fmt.Printf("\n%d answers; %s\n", len(rows), extra)
	fmt.Print("calls:")
	for _, svc := range sortedKeys(calls) {
		fmt.Printf(" %s=%d", svc, calls[svc])
	}
	fmt.Println()
	if cfg.feedback {
		epochs := reg.Epochs()
		if len(epochs) == 0 {
			fmt.Println("feedback: no profile drifted enough to refresh")
		} else {
			fmt.Print("feedback: refreshed epochs")
			for _, svc := range sortedEpochKeys(epochs) {
				st, _ := reg.Lookup(svc)
				fmt.Printf(" %s@%d(ξ=%.2f)", svc, epochs[svc], st.Signature().Statistics().ERSPI)
			}
			fmt.Println()
		}
	}
	if cfg.doTrace {
		rootSp.End()
		fmt.Printf("\ntrace %s:\n", qtrace.ID())
		trace.Render(os.Stdout, trace.Tree(qtrace.Spans()))
	}
}

func sortedEpochKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func render(row []schema.Value) []string {
	out := make([]string, len(row))
	for i, v := range row {
		switch v.Kind {
		case schema.StringValue:
			out[i] = v.Str
		case schema.DateValue:
			out[i] = v.Time().Format("2006-01-02")
		default:
			out[i] = strings.TrimSuffix(fmt.Sprintf("%.2f", v.Num), ".00")
		}
	}
	return out
}

func world(name string) (*service.Registry, string, error) {
	switch name {
	case "travel":
		w := simweb.NewTravelWorld(simweb.TravelOptions{})
		return w.Registry, simweb.RunningExampleText, nil
	case "bio":
		w := simweb.NewBioWorld()
		return w.Registry, simweb.BioExampleText, nil
	case "mashup":
		w := simweb.NewMashupWorld()
		return w.Registry, simweb.MashupExampleText, nil
	case "zipf":
		w := simweb.NewZipfWorld(0, 0, 0)
		return w.Registry, simweb.ZipfExampleText, nil
	default:
		return nil, "", fmt.Errorf("unknown world %q", name)
	}
}

func sortedKeys(m map[string]int64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

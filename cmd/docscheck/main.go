// Command docscheck is the repository's documentation gate, run in
// CI (make docscheck). It enforces two invariants:
//
//  1. Markdown link integrity: every relative link in the given
//     markdown files points at an existing file or directory
//     (external http(s)/mailto links and pure #anchors are skipped).
//  2. Godoc coverage: every exported top-level identifier (types,
//     functions, methods, and named const/var specs) in the given
//     packages carries a doc comment.
//
// Usage:
//
//	docscheck [-md README.md,ARCHITECTURE.md] [-pkg ./internal/opt,./internal/card]
//
// Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var (
		mdList  = flag.String("md", "", "comma-separated markdown files to link-check")
		pkgList = flag.String("pkg", "", "comma-separated package directories whose exported identifiers must have doc comments")
	)
	flag.Parse()

	var problems []string
	for _, f := range splitList(*mdList) {
		problems = append(problems, checkLinks(f)...)
	}
	for _, dir := range splitList(*pkgList) {
		problems = append(problems, checkDocs(dir)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// mdLink matches [text](target); targets with spaces or titles are
// cut at the first space.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// checkLinks verifies every relative link target of one markdown file
// exists on disk (anchors stripped).
func checkLinks(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var problems []string
	base := filepath.Dir(file)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", file, i+1, m[1]))
			}
		}
	}
	return problems
}

// checkDocs parses one package directory (tests excluded) and reports
// every exported top-level declaration without a doc comment. Specs
// inside a documented const/var block inherit the block's comment.
func checkDocs(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are internal API).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}

// checkGenDecl walks a type/const/var declaration group: each
// exported spec needs its own doc comment unless the group carries
// one.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	what := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if what == "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), what, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
					report(name.Pos(), what, name.Name)
				}
			}
		}
	}
}

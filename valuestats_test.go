package mdq_test

import (
	"testing"

	"mdq"
	"mdq/internal/simweb"
)

// zipfSystem registers the skewed Zipf world's tables (with their
// registration-time value distributions) into a fresh System.
func zipfSystem(t *testing.T) (*mdq.System, *simweb.ZipfWorld) {
	t.Helper()
	w := simweb.NewZipfWorld(50, 2000, 1.1)
	s := mdq.NewSystem()
	if err := s.Register(w.Catalog); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(w.Review); err != nil {
		t.Fatal(err)
	}
	return s, w
}

func tagBinding(i int) map[string]mdq.Value {
	return map[string]mdq.Value{"tag": mdq.String(simweb.ZipfTag(i))}
}

// TestBindingSensitiveTemplateCost is the acceptance test of the
// value-sensitive selectivity layer: two bindings of one template get
// different estimated costs under a skewed histogram. A binding near
// the head of the Zipf distribution is served from the cached
// template skeleton (cheap re-cost within RevalidateRatio), while a
// tail binding re-costs so far below the cached baseline that the
// divergence fallback runs a fresh full search.
func TestBindingSensitiveTemplateCost(t *testing.T) {
	s, _ := zipfSystem(t)
	s.PlanCache = mdq.NewPlanCache(32)

	tpl, err := mdq.ParseTemplate(simweb.ZipfTemplateText)
	if err != nil {
		t.Fatal(err)
	}

	// Binding 1: the most common tag. First optimization = the one
	// full search that seeds the template entry.
	_, hot, err := s.OptimizeBound(tpl, tagBinding(0))
	if err != nil {
		t.Fatal(err)
	}
	if hot.TemplateHit {
		t.Fatal("first binding cannot be a template hit")
	}

	// Binding 2: the second most common tag (frequency ratio ≈ 2^1.1,
	// inside the default 4× revalidation band): served from the
	// skeleton, but at its own, different cost.
	_, common, err := s.OptimizeBound(tpl, tagBinding(1))
	if err != nil {
		t.Fatal(err)
	}
	if !common.TemplateHit {
		t.Fatal("near-head binding must be served from the cached skeleton")
	}
	if common.Cost == hot.Cost {
		t.Fatalf("bindings must be priced individually, both cost %g", common.Cost)
	}
	if common.Cost > hot.Cost {
		t.Fatalf("rarer tag must cost less: %g vs %g", common.Cost, hot.Cost)
	}
	if st := s.PlanCache.Stats(); st.Searches != 1 || st.TemplateHits != 1 {
		t.Fatalf("want 1 search + 1 template hit, got %+v", st)
	}

	// Binding 3: a tail tag. Its re-estimated cost leaves the
	// [base/4, base·4] band around the cached baseline, so the entry
	// is discarded and a full search runs.
	_, rare, err := s.OptimizeBound(tpl, tagBinding(49))
	if err != nil {
		t.Fatal(err)
	}
	if rare.TemplateHit {
		t.Fatal("tail binding must fall back to a full search")
	}
	if rare.Cost >= common.Cost {
		t.Fatalf("tail binding must be much cheaper: %g vs %g", rare.Cost, common.Cost)
	}
	// Belt and braces: the skew this test relies on must stay well
	// beyond the default revalidation ratio of 4.
	if hot.Cost/rare.Cost < 4 {
		t.Fatalf("zipf skew too small for the divergence fallback: ratio %g", hot.Cost/rare.Cost)
	}
	st := s.PlanCache.Stats()
	if st.Divergences != 1 {
		t.Fatalf("divergences = %d, want 1", st.Divergences)
	}
	if st.Searches != 2 {
		t.Fatalf("searches = %d, want 2 (seed + divergence fallback)", st.Searches)
	}
}

// TestUniformSelectivityABSwitch: with the distribution layer
// disabled every binding of the template costs the same — the
// uniform model cannot tell constants apart, which is exactly the
// blind spot the histograms remove.
func TestUniformSelectivityABSwitch(t *testing.T) {
	s, _ := zipfSystem(t)
	s.UniformSelectivity = true

	tpl, err := mdq.ParseTemplate(simweb.ZipfTemplateText)
	if err != nil {
		t.Fatal(err)
	}
	_, hot, err := s.OptimizeBound(tpl, tagBinding(0))
	if err != nil {
		t.Fatal(err)
	}
	_, rare, err := s.OptimizeBound(tpl, tagBinding(49))
	if err != nil {
		t.Fatal(err)
	}
	if hot.Cost != rare.Cost {
		t.Fatalf("uniform model must price all bindings equally: %g vs %g", hot.Cost, rare.Cost)
	}

	// And the value-sensitive estimate visibly diverges from the
	// uniform one on the same plan.
	sv, _ := zipfSystem(t)
	q, res, err := sv.OptimizeBound(mustTemplate(t, simweb.ZipfTemplateText), tagBinding(0))
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	valCost, _ := sv.EstimateCost(res.Best)
	uniCost, _ := sv.EstimateUniformCost(res.Best)
	if valCost == uniCost {
		t.Fatalf("value-aware and uniform estimates must differ on a skewed binding (both %g)", valCost)
	}
}

func mustTemplate(t *testing.T, text string) *mdq.Template {
	t.Helper()
	tpl, err := mdq.ParseTemplate(text)
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

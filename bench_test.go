// Benchmarks regenerating the paper's tables and figures (one
// benchmark per experiment) plus micro-benchmarks of the substrates.
// Run with:
//
//	go test -bench=. -benchmem
package mdq_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mdq/internal/abind"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/cq"
	"mdq/internal/exec"
	"mdq/internal/experiments"
	"mdq/internal/fetch"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/schema"
	"mdq/internal/service"
	"mdq/internal/sim"
	"mdq/internal/simweb"
	"mdq/internal/trace"
	"mdq/internal/wsms"
)

func travelWorld(b *testing.B) (*simweb.TravelWorld, *cq.Query) {
	b.Helper()
	w := simweb.NewTravelWorld(simweb.TravelOptions{})
	q, err := simweb.RunningExampleQuery(w.Schema)
	if err != nil {
		b.Fatal(err)
	}
	return w, q
}

// BenchmarkTable1Profiling regenerates Table 1: sampling profiles of
// the four travel services.
func BenchmarkTable1Profiling(b *testing.B) {
	w := simweb.NewTravelWorld(simweb.TravelOptions{DisableServerCache: true})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &service.Profiler{Samples: 50, Seed: int64(i + 1)}
		if _, err := p.Profile(ctx, w.Flight, 0, w.Flight.Sampler()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample41AccessPatterns regenerates Example 4.1:
// enumeration and cogency analysis of the pattern space.
func BenchmarkExample41AccessPatterns(b *testing.B) {
	_, q := travelWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm, err := abind.Enumerate(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(abind.MostCogent(perm)) != 2 {
			b.Fatal("frontier changed")
		}
	}
}

// BenchmarkExample51TopologyEnum regenerates the 19-plan count of
// Example 5.1.
func BenchmarkExample51TopologyEnum(b *testing.B) {
	_, q := travelWorld(b)
	asn := simweb.AssignmentAlpha1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := opt.CountTopologies(q, asn); got != 19 {
			b.Fatalf("topologies = %d", got)
		}
	}
}

// BenchmarkFigure8FetchAssignment regenerates the phase-3 arithmetic
// of Figure 8 (K′ and the Eq. 6 factors) plus the exact assignment.
func BenchmarkFigure8FetchAssignment(b *testing.B) {
	w, q := travelWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := w.BuildPlan(q, simweb.PlanOTopology(), 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		fa := &fetch.Assigner{Estimator: card.Config{Mode: card.OneCall}, Metric: cost.ExecTime{}, K: 10}
		if fr := fa.Assign(p); !fr.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkBranchAndBound is the full three-phase optimization of
// the running example (the paper's core algorithm).
func BenchmarkBranchAndBound(b *testing.B) {
	w, q := travelWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
			K: 10, ChooseMethod: w.Registry.MethodChooser()}
		if _, err := o.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11PlanO runs one Figure 11 cell (plan O, one-call
// cache) on the concurrent executor.
func BenchmarkFigure11PlanO(b *testing.B) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, q := travelWorld(b)
		p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		r := &exec.Runner{Registry: w.Registry, Cache: card.OneCall}
		res, err := r.Run(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Calls["hotel"] != 16 {
			b.Fatal("call counts drifted")
		}
	}
}

// BenchmarkFigure11Simulation runs one Figure 11 cell on the
// virtual-time simulator (plan S, no cache — the 374 s anchor).
func BenchmarkFigure11Simulation(b *testing.B) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, q := travelWorld(b)
		p, err := w.BuildPlan(q, simweb.PlanSTopology(), 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		s := &sim.Simulator{Registry: w.Registry, Cache: card.NoCache}
		res, err := s.Run(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Calls["hotel"] != 284 {
			b.Fatal("call counts drifted")
		}
	}
}

// BenchmarkMultithreadDispatch is the §6 multithreading experiment
// cell (plan S, parallel dispatch, jittered latencies).
func BenchmarkMultithreadDispatch(b *testing.B) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := simweb.NewTravelWorld(simweb.TravelOptions{JitterSigma: 0.75})
		q, err := simweb.RunningExampleQuery(w.Schema)
		if err != nil {
			b.Fatal(err)
		}
		p, err := w.BuildPlan(q, simweb.PlanSTopology(), 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		s := &sim.Simulator{Registry: w.Registry, Cache: card.NoCache, ParallelCalls: true}
		if _, err := s.Run(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeToFirstK measures how long a K-limited run of the
// bushy plan O takes under simulated service latencies (scaled
// clock), streaming versus the seed's materializing join runtime. The
// materializing join cannot emit anything until both branches drain
// completely; the streaming join reaches K while the proliferative
// branches are still producing — the whole point of pipelined joins —
// so its wall time per run sits well below the baseline's.
func BenchmarkTimeToFirstK(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []struct {
		name        string
		materialize bool
	}{
		{"streaming", false},
		{"materializing", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var firstRow time.Duration
			for i := 0; i < b.N; i++ {
				w, q := travelWorld(b)
				p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
				if err != nil {
					b.Fatal(err)
				}
				r := &exec.Runner{Registry: w.Registry, Cache: card.OneCall, K: 3,
					Clock: exec.ScaledClock{Factor: 0.0005}, Materialize: mode.materialize}
				res, err := r.Run(ctx, p)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 3 {
					b.Fatalf("rows = %d, want 3", len(res.Rows))
				}
				firstRow += res.FirstRow
			}
			b.ReportMetric(float64(firstRow.Milliseconds())/float64(b.N), "first-row-ms/op")
		})
	}
}

// BenchmarkBioinformatics regenerates the §6 generalization run.
func BenchmarkBioinformatics(b *testing.B) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Bioinformatics(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWSMSBaseline measures the [16] baseline optimizer.
func BenchmarkWSMSBaseline(b *testing.B) {
	_, q := travelWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := &wsms.Optimizer{}
		if _, err := o.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// largeRandomQuery builds the large random topology used by the
// optimizer scaling benchmarks: a deterministic pseudo-random chain
// of services with mixed free/bound patterns and chunked members, so
// phase 1 yields dozens of permissible assignments for the worker
// pool to spread over.
func largeRandomQuery(tb testing.TB) *cq.Query {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	const n = 7
	q := &cq.Query{Name: "large"}
	for i := 0; i < n; i++ {
		attrs := []schema.Attribute{
			{Name: "A", Domain: schema.Domain{Name: "D", Kind: schema.NumberValue, DistinctValues: 4}},
			{Name: "B", Domain: schema.Domain{Name: "D", Kind: schema.NumberValue, DistinctValues: 4}},
		}
		patterns := []schema.AccessPattern{}
		if i == 0 || rng.Intn(2) == 0 {
			patterns = append(patterns, schema.MustPattern("oo"))
		}
		patterns = append(patterns, schema.MustPattern("io"))
		chunk := 0
		kind := schema.Exact
		if rng.Intn(3) == 0 {
			chunk = 2 + rng.Intn(4)
			kind = schema.Search
		}
		sig := &schema.Signature{
			Name:     fmt.Sprintf("s%d", i),
			Attrs:    attrs,
			Patterns: patterns,
			Kind:     kind,
			Stats: schema.Stats{
				ERSPI:        0.5 + rng.Float64()*4,
				ChunkSize:    chunk,
				ResponseTime: time.Duration(100+rng.Intn(2000)) * time.Millisecond,
			},
		}
		prev := i - 1
		if i == 0 {
			prev = 0
		}
		q.Atoms = append(q.Atoms, &cq.Atom{
			Service: sig.Name,
			Terms:   []cq.Term{cq.V(fmt.Sprintf("X%d", prev)), cq.V(fmt.Sprintf("X%d", i))},
			Index:   i,
			Sig:     sig,
		})
	}
	perm, err := abind.Enumerate(q)
	if err != nil || len(perm) < 8 {
		tb.Fatalf("large random topology admits only %d assignments (err %v)", len(perm), err)
	}
	return q
}

// BenchmarkOptimize measures the three-phase search on the large
// random topology at increasing worker counts. On multi-core
// hardware parallel=4 should complete the same deterministic search
// at least twice as fast as parallel=1 (single-core machines cannot
// show wall-clock scaling; the differential tests in internal/opt
// guarantee the result is identical either way).
func BenchmarkOptimize(b *testing.B) {
	q := largeRandomQuery(b)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
					K: 10, Parallelism: par}
				if _, err := o.Optimize(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizePlanCache measures the cached fast path: after
// the first search every optimization is an LRU lookup plus a plan
// copy.
func BenchmarkOptimizePlanCache(b *testing.B) {
	q := largeRandomQuery(b)
	cache := opt.NewPlanCache(16)
	o := &opt.Optimizer{Metric: cost.ExecTime{}, Estimator: card.Config{Mode: card.OneCall},
		K: 10, Parallelism: opt.AutoParallelism, Cache: cache}
	if _, err := o.Optimize(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := o.Optimize(q)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("cache miss on repeated query")
		}
	}
}

// BenchmarkTraceOverhead measures what the tracing plane costs the
// execution pipeline: the same plan-O run untraced (the default — one
// nil context lookup per instrumentation point) and with an always-on
// trace recording every node, call and join span. The untraced
// variant is the regression guard: its cost must stay at the
// pre-tracing baseline.
func BenchmarkTraceOverhead(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		traced bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, q := travelWorld(b)
				p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
				if err != nil {
					b.Fatal(err)
				}
				runCtx := ctx
				var root *trace.Span
				if mode.traced {
					tr := trace.New("")
					root = tr.Root("query")
					runCtx = trace.With(ctx, root)
				}
				r := &exec.Runner{Registry: w.Registry, Cache: card.OneCall}
				res, err := r.Run(runCtx, p)
				if err != nil {
					b.Fatal(err)
				}
				root.End()
				if res.Stats.Calls["hotel"] != 16 {
					b.Fatal("call counts drifted")
				}
			}
		})
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkParseRunningExample measures the datalog parser.
func BenchmarkParseRunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cq.Parse(simweb.RunningExampleText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorAnnotate measures one cardinality annotation of
// the Figure 8 plan.
func BenchmarkEstimatorAnnotate(b *testing.B) {
	w, q := travelWorld(b)
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := card.Config{Mode: card.OneCall}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tout := cfg.Annotate(p); tout != 15 {
			b.Fatalf("tout = %g", tout)
		}
	}
}

// BenchmarkJoinMergeScan measures the rank-preserving merge-scan
// traversal on two 100-tuple branches.
func BenchmarkJoinMergeScan(b *testing.B) {
	benchmarkJoin(b, plan.MergeScan)
}

// BenchmarkJoinNestedLoop measures the nested-loop strategy on the
// same inputs.
func BenchmarkJoinNestedLoop(b *testing.B) {
	benchmarkJoin(b, plan.NestedLoop)
}

func benchmarkJoin(b *testing.B, method plan.JoinMethod) {
	w, q := travelWorld(b)
	p, err := w.BuildPlan(q, simweb.PlanOTopology(), 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	ix := exec.NewVarIndex(p)
	citySlot, _ := ix.Pos("City")
	fSlot, _ := ix.Pos("FPrice")
	hSlot, _ := ix.Pos("HPrice")
	var left, right []exec.Tuple
	for i := 0; i < 100; i++ {
		l := exec.NewTuple(ix).With(citySlot, cityVal(i%7)).With(fSlot, numVal(100+i))
		r := exec.NewTuple(ix).With(citySlot, cityVal(i%7)).With(hSlot, numVal(200+i))
		left = append(left, l)
		right = append(right, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := exec.JoinPairs(method, left, right, nil, ix)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no join results")
		}
	}
}

func cityVal(i int) schema.Value { return schema.S("city" + string(rune('A'+i))) }
func numVal(n int) schema.Value  { return schema.N(float64(n)) }

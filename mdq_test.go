package mdq_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdq"
)

// demoSystem builds a miniature two-domain world through the public
// API only: a ranked restaurant search service and an exact
// neighborhood-safety service.
func demoSystem(t testing.TB) *mdq.System {
	t.Helper()
	s := mdq.NewSystem()

	area := mdq.Domain{Name: "Area", Kind: mdq.StringKind, DistinctValues: 6}
	restaurants := &mdq.Signature{
		Name: "restaurant",
		Attrs: []mdq.Attribute{
			{Name: "Cuisine", Domain: mdq.Domain{Name: "Cuisine", DistinctValues: 4, Kind: mdq.StringKind}},
			{Name: "Name", Domain: mdq.Domain{Kind: mdq.StringKind}},
			{Name: "Area", Domain: area},
			{Name: "Price", Domain: mdq.Domain{Name: "Price", Kind: mdq.NumberKind}},
		},
		Patterns: []mdq.AccessPattern{mdq.Pattern("iooo")},
		Kind:     mdq.SearchService,
		Stats:    mdq.Stats{ERSPI: 12, ChunkSize: 4, ResponseTime: mdq.Milliseconds(900)},
	}
	var rows [][]mdq.Value
	areas := []string{"North", "South", "East", "West", "Center", "Docks"}
	for _, cuisine := range []string{"italian", "sushi", "tapas", "ramen"} {
		for i := 0; i < 12; i++ {
			rows = append(rows, []mdq.Value{
				mdq.String(cuisine),
				mdq.String(cuisine + " place " + string(rune('A'+i))),
				mdq.String(areas[i%len(areas)]),
				mdq.Number(float64(10 + i*7)),
			})
		}
	}
	if err := s.RegisterTable(restaurants, rows, mdq.Latency{Base: mdq.Milliseconds(900)}); err != nil {
		t.Fatal(err)
	}

	safety := &mdq.Signature{
		Name: "safety",
		Attrs: []mdq.Attribute{
			{Name: "Area", Domain: area},
			{Name: "Score", Domain: mdq.Domain{Name: "Score", Kind: mdq.NumberKind}},
		},
		Patterns: []mdq.AccessPattern{mdq.Pattern("io")},
		Stats:    mdq.Stats{ERSPI: 1, ResponseTime: mdq.Milliseconds(300)},
	}
	var srows [][]mdq.Value
	for i, a := range areas {
		srows = append(srows, []mdq.Value{mdq.String(a), mdq.Number(float64(3 + i%3))})
	}
	if err := s.RegisterTable(safety, srows, mdq.Latency{Base: mdq.Milliseconds(300)}); err != nil {
		t.Fatal(err)
	}

	// districts lists the areas with no inputs — the off-query
	// provider exercised by the §7 expansion test.
	districts := &mdq.Signature{
		Name:     "districts",
		Attrs:    []mdq.Attribute{{Name: "Area", Domain: area}},
		Patterns: []mdq.AccessPattern{mdq.Pattern("o")},
		Stats:    mdq.Stats{ERSPI: float64(len(areas)), ResponseTime: mdq.Milliseconds(200)},
	}
	var drows [][]mdq.Value
	for _, a := range areas {
		drows = append(drows, []mdq.Value{mdq.String(a)})
	}
	if err := s.RegisterTable(districts, drows, mdq.Latency{Base: mdq.Milliseconds(200)}); err != nil {
		t.Fatal(err)
	}
	return s
}

const demoQuery = `
dinner(Name, Area, Price, Score) :-
    restaurant('sushi', Name, Area, Price),
    safety(Area, Score),
    Score >= 4 {0.6},
    Price < 60 {0.7}.`

// TestAnswerEndToEnd drives the whole public pipeline: register,
// parse, optimize, execute.
func TestAnswerEndToEnd(t *testing.T) {
	s := demoSystem(t)
	s.K = 5
	res, ores, err := s.Answer(context.Background(), demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !ores.Feasible {
		t.Error("plan should be feasible")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no answers")
	}
	if len(res.Rows) > 5 {
		t.Errorf("rows = %d, want ≤ 5", len(res.Rows))
	}
	ix := map[string]int{}
	for i, v := range res.Head {
		ix[string(v)] = i
	}
	for _, row := range res.Rows {
		if row[ix["Score"]].Num < 4 || row[ix["Price"]].Num >= 60 {
			t.Errorf("answer violates predicates: %v", row)
		}
	}
	// The optimizer must start from restaurant (the only directly
	// callable atom: safety needs Area).
	if min := ores.Best.Topology.Minimal(); len(min) != 1 {
		t.Errorf("plan should have one source atom, got %v", min)
	}
	if res.Stats.Calls["restaurant"] == 0 || res.Stats.Calls["safety"] == 0 {
		t.Error("both services must be invoked")
	}
}

// TestBudgetThroughFacade: a System.Budget bounds the whole pipeline
// — an expired deadline aborts optimization, a call cap aborts
// execution — and both failures match ErrBudgetExceeded. Uncapped
// budgets still account calls.
func TestBudgetThroughFacade(t *testing.T) {
	s := demoSystem(t)
	s.K = 5

	s.Budget = mdq.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	if _, _, err := s.Answer(context.Background(), demoQuery); !errors.Is(err, mdq.ErrBudgetExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrBudgetExceeded", err)
	}
	var be *mdq.BudgetError
	if err := s.Budget.Err(); !errors.As(err, &be) || be.Reason != "deadline" {
		t.Fatalf("budget error = %v, want reason \"deadline\"", err)
	}

	s.Budget = mdq.NewBudget(0, 1)
	if _, _, err := s.Answer(context.Background(), demoQuery); !errors.Is(err, mdq.ErrBudgetExceeded) {
		t.Fatalf("call cap: err = %v, want ErrBudgetExceeded", err)
	}

	s.Budget = mdq.NewBudget(0, 0)
	if _, _, err := s.Answer(context.Background(), demoQuery); err != nil {
		t.Fatalf("uncapped budget must not trip: %v", err)
	}
	if s.Budget.Calls() == 0 {
		t.Error("uncapped budget should still count service calls")
	}
}

// TestSimulateAgreesWithExecute: virtual-time simulation matches the
// real executor on counts and rows.
func TestSimulateAgreesWithExecute(t *testing.T) {
	s := demoSystem(t)
	s.K = 0 // drain
	q, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	er, err := s.Execute(context.Background(), ores.Best)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.Simulate(context.Background(), ores.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Rows) != len(sr.Rows) {
		t.Errorf("executor %d rows, simulator %d", len(er.Rows), len(sr.Rows))
	}
	for svc, n := range er.Stats.Calls {
		if sr.Stats.Calls[svc] != n {
			t.Errorf("%s: executor %d calls, simulator %d", svc, n, sr.Stats.Calls[svc])
		}
	}
	if sr.Makespan <= 0 {
		t.Error("simulator must report a makespan")
	}
}

// TestProfileAndEstimate: the profiling and estimation entry points
// work through the facade.
func TestProfileAndEstimate(t *testing.T) {
	s := demoSystem(t)
	st, err := s.Profile(context.Background(), "restaurant", 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunkSize != 4 {
		t.Errorf("profiled chunk = %d, want 4", st.ChunkSize)
	}
	q, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	c, tout := s.EstimateCost(ores.Best)
	if c <= 0 || tout <= 0 {
		t.Errorf("estimate = (%g, %g)", c, tout)
	}
}

// TestHTTPRoundTrip: serve the system over HTTP, connect a second
// system to it, and answer the same query remotely.
func TestHTTPRoundTrip(t *testing.T) {
	s := demoSystem(t)
	srv := httptest.NewServer(s.HTTPHandler(0))
	defer srv.Close()

	remote, err := mdq.ConnectHTTP(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	remote.K = 3
	res, _, err := remote.Answer(context.Background(), demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("remote rows = %d, want 3", len(res.Rows))
	}
}

// TestPlanRendering: the ASCII plan rendering is exposed through the
// facade types.
func TestPlanRendering(t *testing.T) {
	s := demoSystem(t)
	q, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ascii := ores.Best.ASCII()
	for _, want := range []string{"IN", "OUT", "restaurant", "safety"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, ascii)
		}
	}
	if !strings.Contains(ores.Best.DOT(), "digraph") {
		t.Error("DOT rendering broken")
	}
}

// TestMetricByName covers the CLI metric resolution.
func TestMetricByName(t *testing.T) {
	for _, name := range []string{"etm", "rr", "sum", "bottleneck", "tts"} {
		if _, ok := mdq.MetricByName(name); !ok {
			t.Errorf("metric %q not resolvable", name)
		}
	}
}

// TestTemplateThroughFacade: parse a template, bind it twice,
// resolve and answer.
func TestTemplateThroughFacade(t *testing.T) {
	s := demoSystem(t)
	s.K = 2
	tpl, err := mdq.ParseTemplate(`
	dinner(Name, Price) :- restaurant($cuisine, Name, Area, Price),
	                       safety(Area, Score), Score >= $minScore {0.6}.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, cuisine := range []string{"sushi", "tapas"} {
		q, err := tpl.Bind(map[string]mdq.Value{
			"cuisine":  mdq.String(cuisine),
			"minScore": mdq.Number(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ResolveQuery(q); err != nil {
			t.Fatal(err)
		}
		ores, err := s.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Execute(context.Background(), ores.Best)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2", cuisine, len(res.Rows))
		}
		for _, row := range res.Rows {
			if !strings.Contains(row[0].Str, cuisine) {
				t.Errorf("binding leaked: %v for %s", row[0], cuisine)
			}
		}
	}
}

// TestExpandThroughFacade: the §7 expansion is reachable from the
// public API.
func TestExpandThroughFacade(t *testing.T) {
	s := demoSystem(t)
	// A stuck query: safety needs Area, and no atom of the query
	// produces it.
	stuck, err := s.Parse(`areas(Score) :- safety(Area, Score).`)
	if err != nil {
		t.Fatal(err)
	}
	expanded, added, err := s.ExpandQuery(stuck, 2)
	if err != nil {
		t.Fatalf("expansion failed: %v", err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1 (districts provides Area)", added)
	}
	if expanded.Atoms[len(expanded.Atoms)-1].Service != "districts" {
		t.Fatalf("expansion picked %s", expanded.Atoms[len(expanded.Atoms)-1].Service)
	}
	ores, err := s.Optimize(expanded)
	if err != nil {
		t.Fatal(err)
	}
	if !ores.Feasible && s.K > 0 {
		t.Log("expanded query feasible flag:", ores.Feasible)
	}
}

package mdq_test

import (
	"context"
	"testing"

	"mdq"
)

// TestDistributedOptimizeFacade: the public distributed surface —
// attach two in-process workers, shard a search across them, and get
// the sequential optimizer's plan back; template bindings then serve
// from the workers' caches, and executing the merged plan answers the
// query.
func TestDistributedOptimizeFacade(t *testing.T) {
	s := demoSystem(t)
	s.K = 5

	q, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		w := s.NewDistWorker(16)
		w.Parallelism = 1
		s.Workers = append(s.Workers, mdq.DistLocalTransport{Worker: w})
	}
	got, err := s.DistributedOptimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Best.Signature() != want.Best.Signature() {
		t.Fatalf("distributed (%g, %s), sequential (%g, %s)",
			got.Cost, got.Best.Signature(), want.Cost, want.Best.Signature())
	}

	// The merged plan executes like any locally optimized one.
	res, err := s.Execute(context.Background(), got.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("distributed plan produced no answers")
	}

	// Template bindings flow through the workers' template caches.
	tpl, err := mdq.ParseTemplate(adaptiveTemplate)
	if err != nil {
		t.Fatal(err)
	}
	_, r1, err := s.DistributedOptimizeBound(context.Background(), tpl, bindings("sushi"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TemplateHit {
		t.Fatal("cold distributed template call claimed a hit")
	}
	_, r2, err := s.DistributedOptimizeBound(context.Background(), tpl, bindings("tapas"))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit {
		t.Fatal("second distributed binding missed the worker template caches")
	}

	// Without workers the facade refuses rather than silently
	// degrading.
	bare := demoSystem(t)
	if _, err := bare.DistributedOptimize(context.Background(), q); err == nil {
		t.Fatal("DistributedOptimize without workers did not error")
	}
}

// TestDistributedAnswerFacade: the end-to-end public pipeline —
// distributed optimization plus fragment execution returns the exact
// rows a local Answer produces.
func TestDistributedAnswerFacade(t *testing.T) {
	s := demoSystem(t)
	s.K = 5
	_, wantOpt, err := s.Answer(context.Background(), demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Re-execute locally on a fresh system so observed state matches.
	s2 := demoSystem(t)
	s2.K = 5
	want, _, err := s2.Answer(context.Background(), demoQuery)
	if err != nil {
		t.Fatal(err)
	}

	fleet := demoSystem(t)
	fleet.K = 5
	for i := 0; i < 2; i++ {
		w := fleet.NewDistWorker(16)
		w.Parallelism = 1
		fleet.Workers = append(fleet.Workers, mdq.DistLocalTransport{Worker: w})
	}
	res, ores, err := fleet.DistributedAnswer(context.Background(), demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ores.Cost != wantOpt.Cost {
		t.Fatalf("distributed answer optimized at %g, local at %g", ores.Cost, wantOpt.Cost)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("distributed answer has %d rows, local %d", len(res.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !res.Rows[i][j].Equal(want.Rows[i][j]) {
				t.Fatalf("row %d col %d: distributed %s, local %s", i, j, res.Rows[i][j], want.Rows[i][j])
			}
		}
	}

	bare := demoSystem(t)
	if _, err := bare.DistributedExecute(context.Background(), ores.Best); err == nil {
		t.Fatal("DistributedExecute without workers did not error")
	}
}

package mdq_test

import (
	"context"
	"testing"

	"mdq"
)

// TestDistributedOptimizeFacade: the public distributed surface —
// attach two in-process workers, shard a search across them, and get
// the sequential optimizer's plan back; template bindings then serve
// from the workers' caches, and executing the merged plan answers the
// query.
func TestDistributedOptimizeFacade(t *testing.T) {
	s := demoSystem(t)
	s.K = 5

	q, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		w := s.NewDistWorker(16)
		w.Parallelism = 1
		s.Workers = append(s.Workers, mdq.DistLocalTransport{Worker: w})
	}
	got, err := s.DistributedOptimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Best.Signature() != want.Best.Signature() {
		t.Fatalf("distributed (%g, %s), sequential (%g, %s)",
			got.Cost, got.Best.Signature(), want.Cost, want.Best.Signature())
	}

	// The merged plan executes like any locally optimized one.
	res, err := s.Execute(context.Background(), got.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("distributed plan produced no answers")
	}

	// Template bindings flow through the workers' template caches.
	tpl, err := mdq.ParseTemplate(adaptiveTemplate)
	if err != nil {
		t.Fatal(err)
	}
	_, r1, err := s.DistributedOptimizeBound(context.Background(), tpl, bindings("sushi"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TemplateHit {
		t.Fatal("cold distributed template call claimed a hit")
	}
	_, r2, err := s.DistributedOptimizeBound(context.Background(), tpl, bindings("tapas"))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit {
		t.Fatal("second distributed binding missed the worker template caches")
	}

	// Without workers the facade refuses rather than silently
	// degrading.
	bare := demoSystem(t)
	if _, err := bare.DistributedOptimize(context.Background(), q); err == nil {
		t.Fatal("DistributedOptimize without workers did not error")
	}
}

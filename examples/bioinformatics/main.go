// Command bioinformatics runs the §6 generalization of the paper:
// a multi-domain query over protein repositories — KEGG (pathway
// membership), UniProt (protein records), InterPro (domain
// annotations) and BLAST (ranked homology search) — finding
// evolutionary relationships between human and mouse proteins that
// carry repeated domains and participate in glycolysis.
//
// Run with: go run ./examples/bioinformatics
package main

import (
	"context"
	"fmt"
	"log"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/simweb"
)

func main() {
	world := simweb.NewBioWorld()
	query, err := world.BioQuery()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:")
	fmt.Println(" ", query)
	fmt.Println()

	optimizer := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: world.Registry.MethodChooser(),
	}
	res, err := optimizer.Optimize(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal plan:")
	fmt.Println(res.Best.ASCII())
	fmt.Printf("estimated ETM %.1f s; BLAST fetches capped by decay at %d chunks\n\n",
		res.Cost, world.BLAST.Signature().Statistics().MaxFetches())

	runner := &exec.Runner{Registry: world.Registry, Cache: card.OneCall, K: 10}
	out, err := runner.Run(context.Background(), res.Best)
	if err != nil {
		log.Fatal(err)
	}
	ix := map[string]int{}
	for i, v := range out.Head {
		ix[string(v)] = i
	}
	fmt.Printf("%-8s %-12s %-8s %s\n", "HUMAN", "GENE", "MOUSE", "BLAST SCORE")
	for _, row := range out.Rows {
		fmt.Printf("%-8s %-12s %-8s %.0f\n",
			row[ix["Acc"]].Str, row[ix["Gene"]].Str, row[ix["Hit"]].Str, row[ix["Score"]].Num)
	}
	fmt.Printf("\nservice calls: kegg=%d uniprot=%d interpro=%d blast=%d\n",
		out.Stats.Calls["kegg"], out.Stats.Calls["uniprot"],
		out.Stats.Calls["interpro"], out.Stats.Calls["blast"])
}

// Command quickstart shows the whole mdq lifecycle in one file:
// define two services (a ranked search service and an exact one),
// register them, write a multi-domain query in datalog-like syntax,
// let the optimizer pick a plan, and execute it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mdq"
)

func main() {
	sys := mdq.NewSystem()
	sys.K = 5 // we want the five best answers

	// A search service: restaurants by cuisine, returned in ranking
	// order (an opaque relevance), paged four at a time.
	area := mdq.Domain{Name: "Area", Kind: mdq.StringKind, DistinctValues: 6}
	restaurant := &mdq.Signature{
		Name: "restaurant",
		Attrs: []mdq.Attribute{
			{Name: "Cuisine", Domain: mdq.Domain{Name: "Cuisine", Kind: mdq.StringKind, DistinctValues: 4}},
			{Name: "Name", Domain: mdq.Domain{Kind: mdq.StringKind}},
			{Name: "Area", Domain: area},
			{Name: "Price", Domain: mdq.Domain{Name: "Price", Kind: mdq.NumberKind}},
		},
		Patterns: []mdq.AccessPattern{mdq.Pattern("iooo")}, // cuisine must be given
		Kind:     mdq.SearchService,
		Stats:    mdq.Stats{ERSPI: 12, ChunkSize: 4, ResponseTime: mdq.Milliseconds(900)},
	}
	areas := []string{"North", "South", "East", "West", "Center", "Docks"}
	var rows [][]mdq.Value
	for _, cuisine := range []string{"italian", "sushi", "tapas", "ramen"} {
		for i := 0; i < 12; i++ { // ranking order: best first
			rows = append(rows, []mdq.Value{
				mdq.String(cuisine),
				mdq.String(fmt.Sprintf("%s place %c", cuisine, 'A'+i)),
				mdq.String(areas[i%len(areas)]),
				mdq.Number(float64(10 + i*7)),
			})
		}
	}
	if err := sys.RegisterTable(restaurant, rows, mdq.Latency{Base: mdq.Milliseconds(900)}); err != nil {
		log.Fatal(err)
	}

	// An exact service: the safety score of an area (one tuple per
	// call, area must be given).
	safety := &mdq.Signature{
		Name: "safety",
		Attrs: []mdq.Attribute{
			{Name: "Area", Domain: area},
			{Name: "Score", Domain: mdq.Domain{Name: "Score", Kind: mdq.NumberKind}},
		},
		Patterns: []mdq.AccessPattern{mdq.Pattern("io")},
		Kind:     mdq.ExactService,
		Stats:    mdq.Stats{ERSPI: 1, ResponseTime: mdq.Milliseconds(300)},
	}
	var srows [][]mdq.Value
	for i, a := range areas {
		srows = append(srows, []mdq.Value{mdq.String(a), mdq.Number(float64(3 + i%3))})
	}
	if err := sys.RegisterTable(safety, srows, mdq.Latency{Base: mdq.Milliseconds(300)}); err != nil {
		log.Fatal(err)
	}

	// The multi-domain query: good sushi in safe areas, under 60.
	// Selectivity annotations ({...}) carry profile knowledge.
	query := `
	dinner(Name, Area, Price, Score) :-
	    restaurant('sushi', Name, Area, Price),
	    safety(Area, Score),
	    Score >= 4 {0.6},
	    Price < 60 {0.7}.`

	res, ores, err := sys.Answer(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("optimized plan:")
	fmt.Println(ores.Best.ASCII())
	fmt.Printf("estimated %s cost: %.1f\n\n", sys.Metric.Name(), ores.Cost)
	fmt.Printf("%-16s %-8s %-7s %s\n", "NAME", "AREA", "PRICE", "SAFETY")
	for _, row := range res.Rows {
		fmt.Printf("%-16s %-8s %-7.0f %.0f\n", row[0].Str, row[1].Str, row[2].Num, row[3].Num)
	}
	fmt.Printf("\nservice calls: restaurant=%d safety=%d\n",
		res.Stats.Calls["restaurant"], res.Stats.Calls["safety"])
}

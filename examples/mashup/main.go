// Command mashup is the end-user scenario of the paper's
// introduction: composing a book search engine, a review aggregator
// and a news search engine into one declarative multi-domain query —
// the kind of integration Yahoo Pipes and DAMIA required users to
// wire procedurally (§7), here derived automatically from datalog.
//
// To demonstrate the web-service substrate, the services are
// actually served over HTTP on a local listener and the query is
// optimized and executed against the remote endpoints.
//
// Run with: go run ./examples/mashup
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"mdq"
	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/exec"
	"mdq/internal/httpwrap"
	"mdq/internal/opt"
	"mdq/internal/simweb"
)

func main() {
	ctx := context.Background()

	// Serve the three mashup services over HTTP.
	world := simweb.NewMashupWorld()
	mux, names := httpwrap.ServeRegistry(world.Registry, httpwrap.HandlerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %v at %s\n\n", names, base)

	// Connect from scratch: signatures travel over the wire.
	remote, err := mdq.ConnectHTTP(ctx, base, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := remote.SetJoinMethod("review", "news", "NL"); err != nil {
		log.Fatal(err)
	}

	query, err := remote.Parse(simweb.MashupExampleText)
	if err != nil {
		log.Fatal(err)
	}

	optimizer := &opt.Optimizer{
		Metric:       cost.RequestResponse{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            8,
		ChooseMethod: remote.Registry().MethodChooser(),
	}
	res, err := optimizer.Optimize(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal plan (request–response metric):")
	fmt.Println(res.Best.ASCII())

	runner := &exec.Runner{Registry: remote.Registry(), Cache: card.Optimal, K: 8}
	out, err := runner.Run(ctx, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	ix := map[string]int{}
	for i, v := range out.Head {
		ix[string(v)] = i
	}
	fmt.Printf("%-20s %-16s %-34s %s\n", "BOOK", "AUTHOR", "HEADLINE", "RATING")
	for _, row := range out.Rows {
		fmt.Printf("%-20s %-16s %-34s %.0f\n",
			row[ix["Title"]].Str, row[ix["Author"]].Str, row[ix["Headline"]].Str, row[ix["Rating"]].Num)
	}
	fmt.Printf("\nHTTP calls: book=%d review=%d news=%d\n",
		out.Stats.Calls["book"], out.Stats.Calls["review"], out.Stats.Calls["news"])
}

// Command conferencetrip runs the paper's running example end to
// end (§2.5, Figure 3): "find all database conferences in the next
// six months in locations where the average temperature is 28 °C
// degrees and for which a cheap travel solution including a luxury
// accommodation exists".
//
// It reproduces the analysis of the paper on the calibrated
// simulated deep-web services: the optimizer derives plan O
// (conf → weather → (flight ∥ hotel) with a merge-scan join, Figures
// 7d and 8), and executing the three named plans S, P and O under
// the three caching settings reproduces the call counts of Figure
// 11. The answer listing at the end corresponds to Figure 10.
//
// Run with: go run ./examples/conferencetrip
package main

import (
	"context"
	"fmt"
	"log"

	"mdq/internal/card"
	"mdq/internal/cost"
	"mdq/internal/exec"
	"mdq/internal/opt"
	"mdq/internal/plan"
	"mdq/internal/sim"
	"mdq/internal/simweb"
)

func main() {
	ctx := context.Background()
	world := simweb.NewTravelWorld(simweb.TravelOptions{})
	query, err := simweb.RunningExampleQuery(world.Schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query (Figure 3):")
	fmt.Println(" ", query)
	fmt.Println()

	// Let the optimizer find the best plan under the execution-time
	// metric with one-call-cache estimates, k = 10.
	optimizer := &opt.Optimizer{
		Metric:       cost.ExecTime{},
		Estimator:    card.Config{Mode: card.OneCall},
		K:            10,
		ChooseMethod: world.Registry.MethodChooser(),
	}
	res, err := optimizer.Optimize(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal plan (the paper's plan O, Figure 8):")
	fmt.Println(res.Best.ASCII())
	fmt.Printf("estimated ETM: %.1f s — search visited %d states, pruned %d\n\n",
		res.Cost, res.Stats.StatesVisited, res.Stats.StatesPruned)

	// Reproduce Figure 11: the three named plans under the three
	// caching settings, on the virtual-time simulator.
	fmt.Println("Figure 11 (calls per service and total time):")
	fmt.Printf("%-4s %-9s %5s %8s %7s %6s %9s\n", "plan", "cache", "conf", "weather", "flight", "hotel", "time")
	for _, pl := range []struct {
		name string
		topo *plan.Topology
	}{
		{"S", simweb.PlanSTopology()},
		{"P", simweb.PlanPTopology()},
		{"O", simweb.PlanOTopology()},
	} {
		for _, mode := range []card.CacheMode{card.NoCache, card.OneCall, card.Optimal} {
			w := simweb.NewTravelWorld(simweb.TravelOptions{})
			q, err := simweb.RunningExampleQuery(w.Schema)
			if err != nil {
				log.Fatal(err)
			}
			p, err := w.BuildPlan(q, pl.topo, 3, 4)
			if err != nil {
				log.Fatal(err)
			}
			s := &sim.Simulator{Registry: w.Registry, Cache: mode}
			r, err := s.Run(ctx, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-4s %-9s %5d %8d %7d %6d %8.0fs\n", pl.name, mode,
				r.Stats.Calls["conf"], r.Stats.Calls["weather"],
				r.Stats.Calls["flight"], r.Stats.Calls["hotel"], r.Makespan.Seconds())
		}
	}
	fmt.Println()

	// Execute plan O for real and list the first answers (Figure 10).
	runner := &exec.Runner{Registry: world.Registry, Cache: card.OneCall, K: 10}
	out, err := runner.Run(ctx, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first answers (cf. Figure 10):")
	ix := map[string]int{}
	for i, v := range out.Head {
		ix[string(v)] = i
	}
	fmt.Printf("%-38s %-10s %-12s %-12s %7s %7s\n", "CONFERENCE", "CITY", "START", "END", "FLIGHT", "HOTEL")
	for _, row := range out.Rows {
		fmt.Printf("%-38s %-10s %-12s %-12s %7.0f %7.0f\n",
			row[ix["Conf"]].Str, row[ix["City"]].Str,
			row[ix["Start"]].Time().Format("2006-01-02"),
			row[ix["End"]].Time().Format("2006-01-02"),
			row[ix["FPrice"]].Num, row[ix["HPrice"]].Num)
	}
}

//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// loadRun mirrors the serve.LoadRun fields this test asserts on (the
// e2e package stays dependency-free of the module under test, like
// the rest of this file's black-box checks).
type loadRun struct {
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	TotalSent      int64   `json:"total_sent"`
	Throughput     float64 `json:"throughput_rps"`
	ServerRequests float64 `json:"server_requests"`
	ServerCalls    float64 `json:"server_calls"`
}

// buildLoadBinaries compiles the serving fleet plus the load driver
// and its regression gate into dir.
func buildLoadBinaries(t *testing.T, dir string) (serve, worker, bench, gate string) {
	t.Helper()
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	serve = filepath.Join(dir, "mdqserve")
	worker = filepath.Join(dir, "mdqworker")
	bench = filepath.Join(dir, "mdqbench")
	gate = filepath.Join(dir, "loadgate")
	for bin, pkg := range map[string]string{
		serve:  "./cmd/mdqserve",
		worker: "./cmd/mdqworker",
		bench:  "./cmd/mdqbench",
		gate:   "./cmd/loadgate",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return serve, worker, bench, gate
}

// artifactsDir returns where diagnostic artifacts go: the directory
// named by MDQ_LOAD_ARTIFACTS (created if needed, kept after the run
// so CI can upload it on failure) or a test temp dir.
func artifactsDir(t *testing.T) string {
	t.Helper()
	if dir := os.Getenv("MDQ_LOAD_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("creating artifacts dir %s: %v", dir, err)
		}
		return dir
	}
	return t.TempDir()
}

// saveGET snapshots one fleet endpoint into the artifacts directory.
func saveGET(t *testing.T, url, path string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Logf("snapshot %s: %v", url, err)
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		t.Logf("snapshot %s: %v", url, err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("writing %s: %v", path, err)
	}
}

// TestClosedLoopLoadGate is the serving-path e2e gate: a short
// closed-loop load run against a real coordinator + two-worker fleet
// must clear the committed LOAD_BASELINE.json under generous smoke
// tolerances, the client-side request count must reconcile with the
// server's /metrics, and a query carrying a 1ms deadline must come
// back as a clean budget-exceeded JSON error.
func TestClosedLoopLoadGate(t *testing.T) {
	dir := t.TempDir()
	serveBin, workerBin, benchBin, gateBin := buildLoadBinaries(t, dir)
	artDir := artifactsDir(t)
	ports := freePorts(t, 3)
	serveAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	w1 := fmt.Sprintf("127.0.0.1:%d", ports[1])
	w2 := fmt.Sprintf("127.0.0.1:%d", ports[2])

	for _, addr := range []string{w1, w2} {
		startProc(t, workerBin, "-addr", addr, "-world", "travel", "-parallel", "1",
			"-feedback-min-calls", "1", "-feedback-min-drift", "0")
		waitReady(t, "http://"+addr+"/dist/info")
	}
	startProc(t, serveBin, "-addr", serveAddr, "-world", "travel", "-parallel", "1",
		"-workers", "http://"+w1+",http://"+w2)
	waitReady(t, "http://"+serveAddr+"/metrics")

	// Snapshot the fleet's observability endpoints whatever happens, so
	// a CI failure uploads the evidence alongside the run JSON.
	t.Cleanup(func() {
		saveGET(t, "http://"+serveAddr+"/metrics", filepath.Join(artDir, "metrics.txt"))
		saveGET(t, "http://"+serveAddr+"/slowlog", filepath.Join(artDir, "slowlog.json"))
	})

	// A short closed-loop run; CI hardware varies, so the smoke keeps
	// the measured window small and leaves precision to the gate's
	// generous tolerances.
	runPath := filepath.Join(artDir, "load_run.json")
	bench := exec.Command(benchBin, "-load",
		"-url", "http://"+serveAddr, "-clients", "4",
		"-warmup", "2s", "-duration", "6s", "-out", runPath,
		"-note", "e2e load smoke")
	if out, err := bench.CombinedOutput(); err != nil {
		t.Fatalf("mdqbench -load: %v\n%s", err, out)
	} else {
		t.Logf("mdqbench -load:\n%s", out)
	}

	// The run's own accounting must reconcile with the server's: every
	// request the clients sent (warmup included) appears in
	// mdq_requests_total for /query — the load run is the only traffic.
	data, err := os.ReadFile(runPath)
	if err != nil {
		t.Fatal(err)
	}
	var run loadRun
	if err := json.Unmarshal(data, &run); err != nil {
		t.Fatalf("parsing %s: %v", runPath, err)
	}
	if run.Requests == 0 {
		t.Fatal("load run produced no successful requests")
	}
	if float64(run.TotalSent) != run.ServerRequests {
		t.Fatalf("client/server accounting diverges: clients sent %d, server counted %.0f on /query",
			run.TotalSent, run.ServerRequests)
	}
	if run.ServerCalls == 0 {
		t.Fatal("server charged no service calls during the load run")
	}

	// The committed baseline gates the run. Smoke tolerances are wider
	// than the reference gate's defaults: shared CI runners are noisy,
	// and this guards against gross serving regressions (a lost cache
	// fast path, an accidental serialization point), not drift.
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	gate := exec.Command(gateBin,
		"-baseline", filepath.Join(root, "LOAD_BASELINE.json"), "-run", runPath,
		"-throughput-tolerance", "10", "-latency-tolerance", "10")
	if out, err := gate.CombinedOutput(); err != nil {
		t.Fatalf("loadgate: %v\n%s", err, out)
	} else {
		t.Logf("loadgate:\n%s", out)
	}

	// Budget acceptance: a 1ms deadline cannot finish optimization, so
	// the query must come back 504 with the budget_exceeded marker —
	// a clean typed refusal, not a hang or a 500.
	reqBody, _ := json.Marshal(map[string]any{
		"template":    e2eTemplate,
		"bindings":    map[string]any{"cat": "luxury"},
		"k":           answersK,
		"deadline_ms": 1,
	})
	resp, err := http.Post("http://"+serveAddr+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qe struct {
		Error          string `json:"error"`
		BudgetExceeded bool   `json:"budget_exceeded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qe); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout || !qe.BudgetExceeded {
		t.Fatalf("1ms-deadline query: got %s budget_exceeded=%v (%s), want 504 with budget_exceeded=true",
			resp.Status, qe.BudgetExceeded, qe.Error)
	}

	// Time-to-first-answer observability: a direct query measured with
	// an httptrace clock must report first_row_ms in its response and
	// in the slowlog, and the server's first-row instant must precede
	// the client-observed first response byte — the server cannot have
	// started writing the response before the first row existed.
	traceBody, _ := json.Marshal(map[string]any{
		"template": e2eTemplate,
		"bindings": map[string]any{"cat": "standard"},
		"k":        answersK,
	})
	traceReq, err := http.NewRequest(http.MethodPost, "http://"+serveAddr+"/query", bytes.NewReader(traceBody))
	if err != nil {
		t.Fatal(err)
	}
	traceReq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	var firstByte time.Duration
	traceReq = traceReq.WithContext(httptrace.WithClientTrace(traceReq.Context(), &httptrace.ClientTrace{
		GotFirstResponseByte: func() { firstByte = time.Since(start) },
	}))
	traceResp, err := http.DefaultClient.Do(traceReq)
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	var traced struct {
		Rows           [][]string `json:"rows"`
		FirstRowMillis float64    `json:"first_row_ms"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	if traceResp.StatusCode != http.StatusOK || len(traced.Rows) == 0 {
		t.Fatalf("traced query: %s with %d rows", traceResp.Status, len(traced.Rows))
	}
	firstByteMillis := float64(firstByte) / float64(time.Millisecond)
	if traced.FirstRowMillis <= 0 {
		t.Fatal("traced query response carries no first_row_ms")
	}
	if traced.FirstRowMillis > firstByteMillis {
		t.Fatalf("server first row at %.2fms, but the client saw the first response byte at %.2fms",
			traced.FirstRowMillis, firstByteMillis)
	}

	// The slowlog's newest /query record with rows is the traced
	// request; its first_row_ms must agree with what the response said.
	slowResp, err := http.Get("http://" + serveAddr + "/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer slowResp.Body.Close()
	var records []struct {
		Endpoint       string  `json:"endpoint"`
		Rows           int     `json:"rows"`
		FirstRowMillis float64 `json:"first_row_ms"`
	}
	if err := json.NewDecoder(slowResp.Body).Decode(&records); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range records { // newest first
		if rec.Endpoint != "/query" || rec.Rows == 0 {
			continue
		}
		found = true
		if rec.FirstRowMillis != traced.FirstRowMillis {
			t.Fatalf("slowlog first_row_ms = %.3f, response said %.3f", rec.FirstRowMillis, traced.FirstRowMillis)
		}
		break
	}
	if !found {
		t.Fatal("slowlog holds no /query record with rows")
	}
}

//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// e2eQuery is the three-atom travel query the dist differentials use:
// chunked services, both join kinds, a cross-atom predicate — small
// enough for the single-CPU CI runner, rich enough to produce several
// fragments.
const e2eQuery = `
q(Conf, City, Hotel, HPrice, FPrice) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, 'luxury', Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    FPrice + HPrice < 2000 {0.01}.`

// e2eTemplate is the same query with the hotel category as a bound
// template parameter, so the fleet path exercises the template-level
// plan cache like a real serving workload.
const e2eTemplate = `
q(Conf, City, Hotel, HPrice, FPrice) :-
    flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
    hotel(Hotel, City, $cat, Start, End, HPrice),
    conf('DB', Conf, Start, End, City),
    FPrice + HPrice < 2000 {0.01}.`

const answersK = 5

// buildBinaries compiles the three CLIs into dir.
func buildBinaries(t *testing.T, dir string) (serve, worker, run string) {
	t.Helper()
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	serve = filepath.Join(dir, "mdqserve")
	worker = filepath.Join(dir, "mdqworker")
	run = filepath.Join(dir, "mdqrun")
	for bin, pkg := range map[string]string{
		serve:  "./cmd/mdqserve",
		worker: "./cmd/mdqworker",
		run:    "./cmd/mdqrun",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return serve, worker, run
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

// startProc launches a binary and kills it at test end, capturing its
// combined output for failure diagnostics.
func startProc(t *testing.T, bin string, args ...string) *bytes.Buffer {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("--- %s output ---\n%s", filepath.Base(bin), out.String())
		}
	})
	return &out
}

// waitReady polls a URL until it answers 200.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not ready within 20s (last error: %v)", url, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// getJSON decodes a GET response body.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// mdqrunRows runs the single-process reference and parses the printed
// answer rows.
func mdqrunRows(t *testing.T, bin string) []string {
	t.Helper()
	cmd := exec.Command(bin, "-world", "travel", "-query", e2eQuery,
		"-k", fmt.Sprint(answersK), "-parallel", "1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mdqrun: %v\n%s", err, out)
	}
	lines := strings.Split(string(out), "\n")
	var rows []string
	inTable := false
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "Conf | "):
			inTable = true // header
		case inTable && strings.Contains(line, " | "):
			rows = append(rows, line)
		case inTable:
			return rows
		}
	}
	t.Fatalf("mdqrun output had no answer table:\n%s", out)
	return nil
}

// TestMultiProcessFragmentExecution is the e2e gate: a real
// coordinator plus two real workers over loopback HTTP answer a query
// through sharded optimization and fragment execution, the answer
// matches single-process mdqrun, and the reverse gossip path reports
// worker-side feedback upstream.
func TestMultiProcessFragmentExecution(t *testing.T) {
	dir := t.TempDir()
	serveBin, workerBin, runBin := buildBinaries(t, dir)
	ports := freePorts(t, 3)
	serveAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	w1 := fmt.Sprintf("127.0.0.1:%d", ports[1])
	w2 := fmt.Sprintf("127.0.0.1:%d", ports[2])

	// Two workers with an eager feedback policy, so fragment
	// execution demonstrably refreshes worker-local profiles.
	for _, addr := range []string{w1, w2} {
		startProc(t, workerBin, "-addr", addr, "-world", "travel", "-parallel", "1",
			"-feedback-min-calls", "1", "-feedback-min-drift", "0")
		waitReady(t, "http://"+addr+"/dist/info")
	}
	startProc(t, serveBin, "-addr", serveAddr, "-world", "travel", "-parallel", "1",
		"-workers", "http://"+w1+",http://"+w2)
	waitReady(t, "http://"+serveAddr+"/stats")

	// Answer the query end to end through the fleet.
	reqBody, _ := json.Marshal(map[string]any{
		"template": e2eTemplate,
		"bindings": map[string]any{"cat": "luxury"},
		"k":        answersK,
	})
	resp, err := http.Post("http://"+serveAddr+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Plan  string           `json:"plan"`
		Error string           `json:"error"`
		Rows  [][]string       `json:"rows"`
		Calls map[string]int64 `json:"calls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %s (%s)", resp.Status, qr.Error)
	}
	if len(qr.Rows) == 0 {
		t.Fatalf("fleet returned no rows (plan %s)", qr.Plan)
	}
	if len(qr.Calls) == 0 {
		t.Fatal("fleet returned no worker-side call accounting")
	}

	// The answer matches the single-process reference byte for byte.
	want := mdqrunRows(t, runBin)
	var got []string
	for _, row := range qr.Rows {
		got = append(got, strings.Join(row, " | "))
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("fleet answer diverges from mdqrun:\n fleet:\n%s\n mdqrun:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// Fragment execution ran on the workers: their eager feedback
	// refreshed local profiles, visible as worker-local epochs…
	workerEpochs := 0
	for _, addr := range []string{w1, w2} {
		var info struct {
			Epochs map[string]uint64 `json:"epochs"`
		}
		getJSON(t, "http://"+addr+"/dist/info", &info)
		workerEpochs += len(info.Epochs)
	}
	if workerEpochs == 0 {
		t.Fatal("no worker-local profile refresh after fragment execution")
	}
	// …and the reverse gossip path reported them to the coordinator,
	// whose own epochs advanced.
	var stats map[string]struct {
		Epoch uint64 `json:"epoch"`
	}
	getJSON(t, "http://"+serveAddr+"/stats", &stats)
	coordEpochs := 0
	for _, s := range stats {
		if s.Epoch > 0 {
			coordEpochs++
		}
	}
	if coordEpochs == 0 {
		t.Fatal("reverse gossip did not advance any coordinator epoch")
	}
}

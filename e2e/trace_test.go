//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"mdq/internal/trace"
)

// TestTracedFleetQuery is the tracing e2e gate: a traced query against
// a real coordinator + two real mdqworker processes over loopback HTTP
// must come back with a single span tree in which the workers' spans —
// shipped across the wire piggybacked on result frames — nest under
// the coordinator's dispatch spans, and every plan-node span carries
// the optimizer estimate next to the observed counters. On failure the
// raw trace dump lands in MDQ_LOAD_ARTIFACTS for CI upload.
func TestTracedFleetQuery(t *testing.T) {
	dir := t.TempDir()
	serveBin, workerBin, _ := buildBinaries(t, dir)
	ports := freePorts(t, 3)
	serveAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	w1 := fmt.Sprintf("127.0.0.1:%d", ports[1])
	w2 := fmt.Sprintf("127.0.0.1:%d", ports[2])

	for _, addr := range []string{w1, w2} {
		startProc(t, workerBin, "-addr", addr, "-world", "travel", "-parallel", "1")
		waitReady(t, "http://"+addr+"/dist/info")
	}
	startProc(t, serveBin, "-addr", serveAddr, "-world", "travel", "-parallel", "1",
		"-workers", "http://"+w1+",http://"+w2)
	waitReady(t, "http://"+serveAddr+"/stats")

	reqBody, _ := json.Marshal(map[string]any{
		"template": e2eTemplate,
		"bindings": map[string]any{"cat": "luxury"},
		"k":        answersK,
		"trace":    true,
	})
	resp, err := http.Post("http://"+serveAddr+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the raw response around: the CI job uploads the artifacts
	// dir only when the test fails, so this is the failure dump.
	dump := filepath.Join(artifactsDir(t), "traced_query_response.json")
	if err := os.WriteFile(dump, raw, 0o644); err != nil {
		t.Logf("saving trace dump: %v", err)
	}

	var qr struct {
		Error   string            `json:"error"`
		Rows    [][]string        `json:"rows"`
		TraceID string            `json:"trace_id"`
		Trace   []*trace.TreeNode `json:"trace"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decoding /query response: %v (dump at %s)", err, dump)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %s (%s)", resp.Status, qr.Error)
	}
	if len(qr.Rows) == 0 {
		t.Fatal("traced query returned no rows")
	}
	if qr.TraceID == "" {
		t.Fatalf("response has no trace_id (dump at %s)", dump)
	}
	if len(qr.Trace) != 1 {
		t.Fatalf("trace has %d roots, want 1 (dump at %s)", len(qr.Trace), dump)
	}

	// The workers' spans crossed two process boundaries and still nest
	// under the coordinator spans that dispatched them.
	var searchSpliced, fragSpliced, nodeSpans int
	trace.Walk(qr.Trace, func(n *trace.TreeNode) {
		switch n.Name {
		case "dist.search.dispatch":
			for _, c := range n.Children {
				if c.Name == "worker.search" {
					searchSpliced++
				}
			}
		case "dist.execute.dispatch":
			for _, c := range n.Children {
				if c.Name == "worker.fragment" {
					fragSpliced++
				}
			}
		}
		if len(n.Name) > 5 && n.Name[:5] == "node:" {
			nodeSpans++
			if n.Est == nil {
				t.Errorf("plan-node span %s has no estimate (dump at %s)", n.Name, dump)
			}
			if n.Obs == nil {
				t.Errorf("plan-node span %s has no observations (dump at %s)", n.Name, dump)
			}
		}
	})
	if searchSpliced != 2 {
		t.Errorf("%d worker.search spans spliced under search dispatches, want 2 (dump at %s)",
			searchSpliced, dump)
	}
	if fragSpliced == 0 {
		t.Errorf("no worker.fragment span spliced under an execute dispatch (dump at %s)", dump)
	}
	if nodeSpans == 0 {
		t.Errorf("no plan-node spans in the trace (dump at %s)", dump)
	}

	// The coordinator retained the trace: the ring-buffer endpoint
	// serves the same tree by ID.
	var stored trace.Dump
	getJSON(t, "http://"+serveAddr+"/trace/"+qr.TraceID, &stored)
	if stored.TraceID != qr.TraceID || len(stored.Spans) == 0 {
		t.Errorf("GET /trace/%s = %+v, want the stored dump", qr.TraceID, stored)
	}
}

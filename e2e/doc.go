// Package e2e holds the multi-process end-to-end smoke test of the
// distributed plane: it builds the real mdqserve, mdqworker and
// mdqrun binaries, starts a coordinator plus two workers over
// loopback HTTP, answers a query through sharded optimization and
// worker-side fragment execution, and asserts the answer matches the
// single-process mdqrun output. The test is build-tag gated (-tags
// e2e) because it spawns processes and binds ports; run it with
// `make e2e-smoke`.
package e2e

//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startKillable launches a binary like startProc but hands back the
// process so the chaos test can SIGKILL it mid-query.
func startKillable(t *testing.T, bin string, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("--- %s output ---\n%s", filepath.Base(bin), out.String())
		}
	})
	return cmd, &out
}

// fleetQuery answers the e2e template through the coordinator and
// returns the rows joined the way mdqrunRows prints them. Any
// non-200, error payload, or empty answer fails the test: the chaos
// contract is that a worker death never surfaces to the client.
func fleetQuery(t *testing.T, serveAddr string) []string {
	t.Helper()
	reqBody, _ := json.Marshal(map[string]any{
		"template": e2eTemplate,
		"bindings": map[string]any{"cat": "luxury"},
		"k":        answersK,
	})
	resp, err := http.Post("http://"+serveAddr+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var qr struct {
		Error string     `json:"error"`
		Rows  [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %s (%s)", resp.Status, qr.Error)
	}
	var rows []string
	for _, row := range qr.Rows {
		rows = append(rows, strings.Join(row, " | "))
	}
	if len(rows) == 0 {
		t.Fatal("fleet returned no rows")
	}
	return rows
}

// fleetStates polls GET /fleet and returns worker → state.
func fleetStates(t *testing.T, serveAddr string) map[string]string {
	t.Helper()
	var fr struct {
		Workers []struct {
			Worker    string `json:"worker"`
			State     string `json:"state"`
			LastError string `json:"last_error"`
		} `json:"workers"`
	}
	getJSON(t, "http://"+serveAddr+"/fleet", &fr)
	states := make(map[string]string, len(fr.Workers))
	for _, w := range fr.Workers {
		states[w.Worker] = w.State
	}
	return states
}

// TestChaosWorkerKill is the fault-tolerance e2e gate: SIGKILL a real
// worker process while queries are in flight against a real
// coordinator, and demand that (a) every query — before, during and
// after the kill — answers byte-identically to single-process mdqrun,
// and (b) the coordinator's /fleet view marks the dead worker down.
func TestChaosWorkerKill(t *testing.T) {
	dir := t.TempDir()
	serveBin, workerBin, runBin := buildBinaries(t, dir)
	ports := freePorts(t, 3)
	serveAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	w1 := fmt.Sprintf("127.0.0.1:%d", ports[1])
	w2 := fmt.Sprintf("127.0.0.1:%d", ports[2])

	startProc(t, workerBin, "-addr", w1, "-world", "travel", "-parallel", "1")
	victim, _ := startKillable(t, workerBin, "-addr", w2, "-world", "travel", "-parallel", "1")
	waitReady(t, "http://"+w1+"/dist/info")
	waitReady(t, "http://"+w2+"/dist/info")
	startProc(t, serveBin, "-addr", serveAddr, "-world", "travel", "-parallel", "1",
		"-workers", "http://"+w1+",http://"+w2,
		"-health-interval", "200ms", "-max-retries", "3")
	waitReady(t, "http://"+serveAddr+"/stats")

	want := mdqrunRows(t, runBin)
	assertAnswer := func(phase string, got []string) {
		t.Helper()
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("%s: fleet answer diverges from mdqrun:\n fleet:\n%s\n mdqrun:\n%s",
				phase, strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}

	// Phase 1: healthy fleet baseline.
	assertAnswer("baseline", fleetQuery(t, serveAddr))
	if states := fleetStates(t, serveAddr); states["http://"+w2] == "down" {
		t.Fatalf("victim reported down before the kill: %v", states)
	}

	// Phase 2: SIGKILL the victim while queries are in flight. The
	// killer fires mid-burst, so some queries race the death itself and
	// the rest hit a coordinator whose membership hasn't yet noticed —
	// dispatches to the corpse must fail over via retry, invisibly.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		if err := victim.Process.Kill(); err != nil {
			t.Errorf("killing victim worker: %v", err)
		}
	}()
	for i := 0; i < 6; i++ {
		assertAnswer(fmt.Sprintf("during-kill query %d", i), fleetQuery(t, serveAddr))
	}
	wg.Wait()
	victim.Wait()

	// Phase 3: the degraded fleet keeps answering correctly.
	assertAnswer("post-kill", fleetQuery(t, serveAddr))

	// Phase 4: the health loop (200ms probes, three consecutive
	// failures) marks the corpse down on /fleet.
	deadline := time.Now().Add(15 * time.Second)
	for {
		states := fleetStates(t, serveAddr)
		if states["http://"+w2] == "down" {
			if states["http://"+w1] != "up" {
				t.Fatalf("survivor not up: %v", states)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never marked down on /fleet: %v", states)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Phase 5: still correct after the eviction settled.
	assertAnswer("post-eviction", fleetQuery(t, serveAddr))
}

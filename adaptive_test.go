package mdq_test

import (
	"context"
	"testing"

	"mdq"
)

const adaptiveTemplate = `
dinner(Name, Price) :- restaurant($cuisine, Name, Area, Price),
                       safety(Area, Score), Score >= $minScore {0.6}.`

func bindings(cuisine string) map[string]mdq.Value {
	return map[string]mdq.Value{
		"cuisine":  mdq.String(cuisine),
		"minScore": mdq.Number(4),
	}
}

// TestAdaptiveTemplateCache drives the whole adaptive loop through
// the public API and asserts the PR's two contracts:
//
//  1. A bound query optimized twice with different constants performs
//     exactly one branch-and-bound search (asserted via the cache's
//     search counter);
//  2. after execution traffic refreshes a service's statistics (epoch
//     bump), the cache never serves a plan priced with the stale
//     statistics — the next optimization agrees exactly with a
//     cache-less optimization under the fresh statistics.
func TestAdaptiveTemplateCache(t *testing.T) {
	s := demoSystem(t)
	s.K = 5
	s.PlanCache = mdq.NewPlanCache(32)
	s.ObserveAll()
	s.Feedback = &mdq.FeedbackPolicy{MinCalls: 1}

	// Distort restaurant's registered profile so real traffic is
	// guaranteed to contradict it: the table really answers in
	// ~900ms, so a 10s registered response time both misprices the
	// plan and guarantees a large observable drift. (ERSPI would not
	// do: chunked services are sized by their fetch schedule, so the
	// cost model never reads it.)
	reg, ok := s.Registry().Lookup("restaurant")
	if !ok {
		t.Fatal("restaurant not registered")
	}
	reg.Signature().Stats.ResponseTime = 10 * mdq.Milliseconds(1000)

	tpl, err := mdq.ParseTemplate(adaptiveTemplate)
	if err != nil {
		t.Fatal(err)
	}

	// Contract 1: two bindings, one search.
	_, r1, err := s.OptimizeBound(tpl, bindings("sushi"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.TemplateHit {
		t.Fatal("first binding did not search")
	}
	_, r2, err := s.OptimizeBound(tpl, bindings("tapas"))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.TemplateHit {
		t.Fatalf("second binding was not a template hit: %+v", s.PlanCache.Stats())
	}
	if st := s.PlanCache.Stats(); st.Searches != 1 {
		t.Fatalf("searches = %d, want exactly 1 for two bindings", st.Searches)
	}

	// Execute: real traffic flows through the observers and the
	// feedback policy refreshes the drifted profile.
	res, err := s.Execute(context.Background(), r2.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no answers")
	}
	if s.ServiceEpoch("restaurant") == 0 {
		t.Fatalf("execution feedback did not bump restaurant's epoch (epochs %v)", s.Epochs())
	}
	after, _ := s.ServiceStats("restaurant")
	if after.ResponseTime >= 10*mdq.Milliseconds(1000) {
		t.Fatal("feedback did not correct the distorted profile")
	}

	// Contract 2: the stale plan is never served. The next binding
	// must price exactly like a cache-less optimization under the
	// refreshed statistics.
	_, r3, err := s.OptimizeBound(tpl, bindings("ramen"))
	if err != nil {
		t.Fatal(err)
	}
	pc := s.PlanCache
	s.PlanCache = nil
	qRef, err := tpl.Bind(bindings("ramen"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResolveQuery(qRef); err != nil {
		t.Fatal(err)
	}
	rRef, err := s.Optimize(qRef)
	if err != nil {
		t.Fatal(err)
	}
	s.PlanCache = pc
	if r3.Cost != rRef.Cost {
		t.Fatalf("post-refresh binding cost %g, cache-less reference %g — stale plan served",
			r3.Cost, rRef.Cost)
	}
	if r3.Cost == r1.Cost {
		t.Fatal("cost unchanged across a large statistics refresh — stale pricing")
	}
	st := pc.Stats()
	if st.Revalidations+st.Divergences == 0 {
		t.Fatalf("epoch bump triggered neither revalidation nor divergence: %+v", st)
	}
	// The exact entry from the first search depended on restaurant
	// and must have been evicted eagerly by the epoch bump.
	if st.EvictedEpoch == 0 {
		t.Fatalf("stale exact entry was not evicted on the epoch bump: %+v", st)
	}
}

// TestAnswerBoundThroughFacade: the one-call serving loop — bind,
// optimize through the template cache, execute with feedback.
func TestAnswerBoundThroughFacade(t *testing.T) {
	s := demoSystem(t)
	s.K = 2
	s.PlanCache = mdq.NewPlanCache(8)
	tpl, err := mdq.ParseTemplate(adaptiveTemplate)
	if err != nil {
		t.Fatal(err)
	}
	res, ores, err := s.AnswerBound(context.Background(), tpl, bindings("sushi"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if ores.Cached {
		t.Fatal("first answer served from an empty cache")
	}
	res2, ores2, err := s.AnswerBound(context.Background(), tpl, bindings("ramen"))
	if err != nil {
		t.Fatal(err)
	}
	if !ores2.TemplateHit {
		t.Fatal("second binding missed the template cache")
	}
	if len(res2.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res2.Rows))
	}
	for _, row := range res2.Rows {
		if row[0].Str == "" || row[0].Str[0] != 'r' { // "ramen place X"
			t.Fatalf("binding leaked into answers: %v", row)
		}
	}
}

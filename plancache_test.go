package mdq_test

import (
	"context"
	"testing"

	"mdq"
)

// TestSystemPlanCache drives the plan cache through the public API:
// the first optimization fills it, the second hits it, executing the
// cached plan still works, and a registry mutation (here a join
// method change) invalidates every entry via the registry version.
func TestSystemPlanCache(t *testing.T) {
	s := demoSystem(t)
	s.K = 5
	s.PlanCache = mdq.NewPlanCache(32)

	q1, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Optimize(q1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first optimization reported a cache hit")
	}

	q2, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("repeated query missed the plan cache")
	}
	if r2.Cost != r1.Cost {
		t.Fatalf("cached cost %g, original %g", r2.Cost, r1.Cost)
	}
	res, err := s.Execute(context.Background(), r2.Best)
	if err != nil {
		t.Fatalf("executing a cached plan: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("cached plan produced no answers")
	}
	if st := s.PlanCache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	// Mutating the registry bumps its version, which is mixed into
	// the cache key: the stale entry must not be served.
	if err := s.SetJoinMethod("restaurant", "safety", "NL"); err != nil {
		t.Fatal(err)
	}
	q3, err := s.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s.Optimize(q3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("registry change did not invalidate the plan cache")
	}
}

// TestSystemParallelismKnob: forcing the sequential search and the
// parallel default must agree on the chosen plan and cost.
func TestSystemParallelismKnob(t *testing.T) {
	seq := demoSystem(t)
	seq.K = 5
	seq.Parallelism = 1
	par := demoSystem(t)
	par.K = 5
	par.Parallelism = 4

	qs, err := seq.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := par.Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := seq.Optimize(qs)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Optimize(qp)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cost != rp.Cost || rs.Feasible != rp.Feasible {
		t.Fatalf("sequential %g/%v, parallel %g/%v", rs.Cost, rs.Feasible, rp.Cost, rp.Feasible)
	}
	if rs.Best.Signature() != rp.Best.Signature() {
		t.Fatalf("plans differ: %s vs %s", rs.Best.Signature(), rp.Best.Signature())
	}
}

module mdq

go 1.22

# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync:
# `make ci` is exactly what the workflow gates on.

GO ?= go
BENCH_TOLERANCE ?= 2.5

.PHONY: build vet fmt test race bench benchgate bench-baseline docscheck dist-smoke share-smoke e2e-smoke chaos-smoke load-smoke load-baseline staticcheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Documentation gate: markdown links in the top-level docs and the
# docs/ reference pages must resolve, and every exported identifier
# in the optimizer, estimator, distribution, execution, serving,
# result-cache and tracing packages must carry a doc comment.
docscheck:
	$(GO) run ./cmd/docscheck \
		-md README.md,ARCHITECTURE.md,ROADMAP.md,docs/API.md,docs/OPERATIONS.md \
		-pkg ./internal/opt,./internal/card,./internal/dist,./internal/exec,./internal/serve,./internal/rescache,./internal/trace

# Distributed-optimization smoke: the coordinator/worker protocol
# under the race detector — two-plus-worker LocalTransport clusters
# (sharded search, wire bound-sync, epoch gossip, cache warmup) and
# the HTTP transport over loopback.
dist-smoke:
	$(GO) test -race -count=1 ./internal/dist

# Cross-query sharing smoke, all under the race detector: the
# shared≡unshared differential (result-cache clusters on all three
# worlds over LocalTransport and HTTP return byte-identical rows with
# strictly fewer logical calls on repeats), the epoch-invalidation
# staleness pins (a bump is never followed by a stale serve, locally
# or via gossip), and the /query coalescer edge cases (leader budget
# trips with live waiters, waiter detach, per-waiter traces).
share-smoke:
	$(GO) test -race -count=1 -run 'TestResultCache|TestWorkerGossip' ./internal/dist
	$(GO) test -race -count=1 ./internal/rescache ./internal/serve ./cmd/mdqserve

# End-to-end smoke: build the real binaries, start a coordinator and
# two mdqworker processes over loopback HTTP, answer a query through
# sharded optimization + fragment execution, and assert the answer
# matches single-process mdqrun output (plus the reverse gossip path
# reporting worker feedback upstream). The traced variant re-runs the
# query with "trace": true and asserts the worker spans — shipped
# across the wire — nest under the coordinator's dispatch spans with
# estimate-vs-actual populated on every plan node. Runs fine on a
# single-CPU dev box; the gate is correctness, not wall-clock.
e2e-smoke:
	$(GO) test -tags e2e -count=1 -v -run 'TestMultiProcessFragmentExecution|TestTracedFleetQuery' ./e2e

# Chaos smoke: SIGKILL a real mdqworker process while queries are in
# flight against a real coordinator. Every query — before, during and
# after the kill — must answer byte-identically to single-process
# mdqrun (dispatches to the corpse fail over via retry, invisibly),
# and the coordinator's /fleet view must mark the dead worker down.
chaos-smoke:
	$(GO) test -tags e2e -count=1 -v -timeout 5m -run TestChaosWorkerKill ./e2e

# Serving-path load smoke: a real coordinator + two-worker fleet over
# loopback takes a short closed-loop load run (mdqbench -load), the
# run must clear LOAD_BASELINE.json via loadgate under generous smoke
# tolerances, client-side request counts must reconcile with the
# server's /metrics, and a 1ms-deadline query must return a clean
# budget-exceeded JSON error. Set MDQ_LOAD_ARTIFACTS to keep the run
# JSON, /metrics and /slowlog snapshots for upload.
load-smoke:
	$(GO) test -tags e2e -count=1 -v -timeout 10m -run TestClosedLoopLoadGate ./e2e

# Refresh the committed serving baseline (run on the reference
# machine, against a freshly started fleet — see README).
load-baseline:
	$(GO) run ./cmd/mdqbench -load -clients 8 -warmup 2s -duration 10s \
		-out LOAD_BASELINE.json \
		-note "refreshed via make load-baseline on $$(uname -m), $$(date +%F)"

# Static analysis beyond go vet. The staticcheck binary is not vendored
# (this module is dependency-free); CI installs a pinned version. The
# target degrades to a notice when the tool is absent locally.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# Gate BenchmarkOptimize* against the committed baseline: fails when
# any benchmark runs slower than baseline × BENCH_TOLERANCE.
benchgate:
	$(GO) test -run=NONE -bench='^BenchmarkOptimize' -benchtime=3x . \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -tolerance $(BENCH_TOLERANCE)

# Refresh the committed baseline (run on the reference machine).
bench-baseline:
	$(GO) test -run=NONE -bench='^BenchmarkOptimize' -benchtime=3x . \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -update \
			-note "refreshed via make bench-baseline on $$(uname -m), $$(date +%F)"

ci: build vet fmt staticcheck docscheck race dist-smoke share-smoke e2e-smoke chaos-smoke load-smoke bench benchgate

# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync:
# `make ci` is exactly what the workflow gates on.

GO ?= go
BENCH_TOLERANCE ?= 2.5

.PHONY: build vet fmt test race bench benchgate bench-baseline docscheck dist-smoke e2e-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Documentation gate: markdown links in the top-level docs must
# resolve, and every exported identifier in the optimizer, estimator,
# distribution and execution packages must carry a doc comment.
docscheck:
	$(GO) run ./cmd/docscheck \
		-md README.md,ARCHITECTURE.md,ROADMAP.md \
		-pkg ./internal/opt,./internal/card,./internal/dist,./internal/exec

# Distributed-optimization smoke: the coordinator/worker protocol
# under the race detector — two-plus-worker LocalTransport clusters
# (sharded search, wire bound-sync, epoch gossip, cache warmup) and
# the HTTP transport over loopback.
dist-smoke:
	$(GO) test -race -count=1 ./internal/dist

# End-to-end smoke: build the real binaries, start a coordinator and
# two mdqworker processes over loopback HTTP, answer a query through
# sharded optimization + fragment execution, and assert the answer
# matches single-process mdqrun output (plus the reverse gossip path
# reporting worker feedback upstream). Runs fine on a single-CPU dev
# box; the gate is correctness, not wall-clock.
e2e-smoke:
	$(GO) test -tags e2e -count=1 -v ./e2e

# Gate BenchmarkOptimize* against the committed baseline: fails when
# any benchmark runs slower than baseline × BENCH_TOLERANCE.
benchgate:
	$(GO) test -run=NONE -bench='^BenchmarkOptimize' -benchtime=3x . \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -tolerance $(BENCH_TOLERANCE)

# Refresh the committed baseline (run on the reference machine).
bench-baseline:
	$(GO) test -run=NONE -bench='^BenchmarkOptimize' -benchtime=3x . \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -update \
			-note "refreshed via make bench-baseline on $$(uname -m), $$(date +%F)"

ci: build vet fmt docscheck race dist-smoke e2e-smoke bench benchgate

# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync:
# `make ci` is exactly what the workflow gates on.

GO ?= go
BENCH_TOLERANCE ?= 2.5

.PHONY: build vet fmt test race bench benchgate bench-baseline docscheck dist-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Documentation gate: markdown links in the top-level docs must
# resolve, and every exported identifier in the optimizer, estimator
# and distribution packages must carry a doc comment.
docscheck:
	$(GO) run ./cmd/docscheck \
		-md README.md,ARCHITECTURE.md,ROADMAP.md \
		-pkg ./internal/opt,./internal/card,./internal/dist

# Distributed-optimization smoke: the coordinator/worker protocol
# under the race detector — two-plus-worker LocalTransport clusters
# (sharded search, wire bound-sync, epoch gossip, cache warmup) and
# the HTTP transport over loopback.
dist-smoke:
	$(GO) test -race -count=1 ./internal/dist

# Gate BenchmarkOptimize* against the committed baseline: fails when
# any benchmark runs slower than baseline × BENCH_TOLERANCE.
benchgate:
	$(GO) test -run=NONE -bench='^BenchmarkOptimize' -benchtime=3x . \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -tolerance $(BENCH_TOLERANCE)

# Refresh the committed baseline (run on the reference machine).
bench-baseline:
	$(GO) test -run=NONE -bench='^BenchmarkOptimize' -benchtime=3x . \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -update \
			-note "refreshed via make bench-baseline on $$(uname -m), $$(date +%F)"

ci: build vet fmt docscheck race dist-smoke bench benchgate

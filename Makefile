# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync:
# `make ci` is exactly what the workflow gates on.

GO ?= go

.PHONY: build vet fmt test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

ci: build vet fmt race bench
